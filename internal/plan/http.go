package plan

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /plan    — the current PlanView
//	POST /tick    — feed the next trace hour (body: TickRequest), returns
//	                the updated PlanView
//	POST /whatif  — price a hypothetical siting (body: WhatIfRequest),
//	                returns a WhatIfResponse
//	GET  /healthz — liveness: "ok\n" while the daemon accepts work
//
// All bodies and responses are JSON.  The handler is safe for concurrent
// use; /plan and /whatif never wait on an in-flight solve.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		view := d.PlanView()
		writeJSON(w, http.StatusOK, &view)
	})
	mux.HandleFunc("/tick", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		var req TickRequest
		if !readJSON(w, r, &req) {
			return
		}
		view, err := d.Tick(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, &view)
	})
	mux.HandleFunc("/whatif", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		var req WhatIfRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := d.WhatIf(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, &resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := d.ctx.Err(); err != nil {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// readJSON decodes a request body, answering 400 on malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps daemon errors to HTTP statuses: shutdown → 503, unknown
// session → 404, everything else (bad scales, unknown sites) → 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNoSession):
		status = http.StatusNotFound
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
}
