// Package plan is the continuous-planning service: a long-running daemon
// around the emulation runner (internal/emul) and the warm-started
// partition LP (internal/sched, internal/lp) that ingests streamed hourly
// load/weather updates, re-plans incrementally — each tick rewrites the
// RHS/bounds of the structure-cached partition LP and re-solves from the
// carried basis, so a healthy tick stream runs at zero cold fallbacks — and
// serves the current plan over a small HTTP/JSON API.
//
// See doc.go at the repository root ("# Serving") for the architecture,
// the snapshot format and the warm-resume contract.
package plan

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"greencloud/internal/emul"
	"greencloud/internal/location"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

// TraceSpec names an emulated trace reproducibly: the same spec always
// builds the same datacenters, fleet and year traces, which is what lets a
// daemon, a batch emul.Runner and a restarted daemon agree bit-for-bit.
// The zero value of every field selects a default, so the zero TraceSpec is
// the standard three-datacenter smoke trace.
type TraceSpec struct {
	// Sites is the size of the generated location catalog.
	Sites int `json:"sites,omitempty"`
	// Seed seeds the catalog generator.
	Seed int64 `json:"seed,omitempty"`
	// Datacenters is how many sites to select (best solar capacity factor,
	// spread across time zones so the sun is always up somewhere).
	Datacenters int `json:"datacenters,omitempty"`
	// VMs is the HPC fleet size.
	VMs int `json:"vms,omitempty"`
	// StartHour is the hour of the TMY year at which the trace starts.
	StartHour int `json:"start_hour,omitempty"`
	// HorizonHours is the scheduler's prediction horizon.
	HorizonHours int `json:"horizon_hours,omitempty"`
	// LPTimeoutMS bounds each tick's partition LP solve, in milliseconds
	// (a tick that overruns degrades instead of stalling the daemon).
	LPTimeoutMS int64 `json:"lp_timeout_ms,omitempty"`
}

// Trace defaults: a three-datacenter, nine-VM summer-day trace small enough
// for CI smoke runs yet busy enough to migrate every few hours.
const (
	defaultSites       = 60
	defaultSeed        = 21
	defaultDatacenters = 3
	defaultVMs         = 9
	defaultStartHour   = 24 * 172
	defaultHorizon     = 12
	defaultLPTimeoutMS = 2000
)

func (ts TraceSpec) withDefaults() TraceSpec {
	if ts.Sites <= 0 {
		ts.Sites = defaultSites
	}
	if ts.Seed == 0 {
		ts.Seed = defaultSeed
	}
	if ts.Datacenters <= 0 {
		ts.Datacenters = defaultDatacenters
	}
	if ts.VMs <= 0 {
		ts.VMs = defaultVMs
	}
	if ts.StartHour <= 0 {
		ts.StartHour = defaultStartHour
	}
	if ts.HorizonHours <= 0 {
		ts.HorizonHours = defaultHorizon
	}
	if ts.LPTimeoutMS <= 0 {
		ts.LPTimeoutMS = defaultLPTimeoutMS
	}
	return ts
}

// Digest is a stable identity for the spec (defaults applied), stored in
// snapshots so a daemon never resumes state recorded under a different
// trace.
func (ts TraceSpec) Digest() string {
	ts = ts.withDefaults()
	h := fnv.New64a()
	for _, v := range []int64{int64(ts.Sites), ts.Seed, int64(ts.Datacenters),
		int64(ts.VMs), int64(ts.StartHour), int64(ts.HorizonHours), ts.LPTimeoutMS} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("trace-%016x", h.Sum64())
}

// Build materializes the spec: the location catalog, and an emul.Config
// selecting the spec's datacenters and fleet.  Deterministic — two Builds
// of equal specs yield identical configs.
func (ts TraceSpec) Build() (emul.Config, *location.Catalog, error) {
	ts = ts.withDefaults()
	cat, err := location.Generate(location.Options{Count: ts.Sites, Seed: ts.Seed, RepresentativeDays: 1})
	if err != nil {
		return emul.Config{}, nil, err
	}
	fleet := vm.NewHPCFleet("hpc", ts.VMs)
	fleetKW := fleet.TotalPowerW() / 1000

	// Prefer high-solar sites spread across time zones so the sun is
	// always up somewhere (the paper's follow-the-renewables premise).
	solar := cat.TopBySolarCF(ts.Datacenters * 3)
	if len(solar) == 0 {
		return emul.Config{}, nil, fmt.Errorf("plan: catalog has no sites")
	}
	picked := []*location.Site{solar[0]}
	for _, cand := range solar[1:] {
		distinct := true
		for _, p := range picked {
			d := cand.UTCOffsetHours - p.UTCOffsetHours
			if d < 0 {
				d = -d
			}
			if d > 12 {
				d = 24 - d
			}
			if d < 5 {
				distinct = false
				break
			}
		}
		if distinct {
			picked = append(picked, cand)
		}
		if len(picked) == ts.Datacenters {
			break
		}
	}
	for len(picked) < ts.Datacenters && len(picked) < len(solar) {
		picked = append(picked, solar[len(picked)])
	}

	dcs := make([]emul.DatacenterConfig, 0, len(picked))
	for _, site := range picked {
		dcs = append(dcs, emul.DatacenterConfig{
			Name:       site.Name,
			Site:       site,
			CapacityKW: fleetKW,
			SolarKW:    fleetKW * 8 / site.SolarCapacityFactor * 0.25,
			WindKW:     0.2,
		})
	}
	return emul.Config{
		Datacenters:  dcs,
		VMs:          fleet,
		StartHour:    ts.StartHour,
		Hours:        24, // nominal batch length; the daemon ticks past it freely
		HorizonHours: ts.HorizonHours,
		Link:         wan.Link{BandwidthMbps: 1000, LatencyMs: 90},
		LPTimeout:    time.Duration(ts.LPTimeoutMS) * time.Millisecond,
	}, cat, nil
}
