package location

import (
	"fmt"
	"math/rand"
	"sort"

	"greencloud/internal/pue"
	"greencloud/internal/timeseries"
	"greencloud/internal/weather"
)

// Site is one candidate datacenter location with everything the placement
// framework needs to know about it.
type Site struct {
	// ID is the index of the site within its catalog.
	ID int
	// Name is a human-readable synthetic name, e.g. "ridge-0042".
	Name string
	// Archetype is the climate class the site was generated from.
	Archetype weather.Archetype
	// LatitudeDeg is the signed latitude.
	LatitudeDeg float64
	// UTCOffsetHours is the site's time zone (0..23 hours east of UTC).
	// The per-epoch profiles below are expressed on a shared UTC clock so
	// that "follow the renewables" across longitudes behaves like the
	// paper's world-wide network (when it is night at one site it can be
	// day at another).
	UTCOffsetHours int

	// SolarCapacityFactor is the yearly average of α(d,t).
	SolarCapacityFactor float64
	// WindCapacityFactor is the yearly average of β(d,t).
	WindCapacityFactor float64
	// AvgPUE is the yearly average PUE implied by the temperature trace.
	AvgPUE float64
	// MaxPUE is the worst-case PUE, used to size power/cooling (maxPUE(d)).
	MaxPUE float64

	// LandPriceUSDPerM2 is the industrial land price (priceLand(d)).
	LandPriceUSDPerM2 float64
	// GridPriceUSDPerKWh is the brown electricity price (priceEnergy(d)).
	GridPriceUSDPerKWh float64
	// DistPowerKm is the distance to the nearest transmission line or
	// power plant, which sets costLinePow(d).
	DistPowerKm float64
	// DistNetworkKm is the distance to the nearest backbone connection
	// point, which sets costLineNet(d).
	DistNetworkKm float64
	// NearestPlantKW is the capacity of the nearest brown power plant,
	// which caps how much grid power the site may draw (nearPlantCap(d)).
	NearestPlantKW float64

	// Alpha, Beta and PUE are the per-epoch profiles on the catalog grid:
	// Alpha[i] is the solar production factor during epoch i, Beta[i] the
	// wind production factor, PUE[i] the PUE.
	Alpha []float64
	Beta  []float64
	PUE   []float64

	seed int64
}

// WeatherTrace regenerates the full hourly weather trace for the site.  The
// catalog itself only stores reduced per-epoch profiles; callers that need
// hourly resolution (e.g. the GreenNebula emulation) use this.
func (s *Site) WeatherTrace() *weather.Trace {
	return weather.Generate(s.Archetype, s.seed)
}

// HourlyProfiles regenerates the hourly α, β and PUE traces for the site in
// the site's local time.
func (s *Site) HourlyProfiles() (alpha, beta, pueSeries *timeseries.Hourly) {
	tr := s.WeatherTrace()
	return SolarSeries(tr), WindSeries(tr), pue.Series(tr.TemperatureC)
}

// HourlyProfilesUTC regenerates the hourly α, β and PUE traces expressed on
// the shared UTC clock (shifted by the site's time zone), matching the
// per-epoch Alpha/Beta/PUE profiles stored in the catalog.
func (s *Site) HourlyProfilesUTC() (alpha, beta, pueSeries *timeseries.Hourly) {
	alpha, beta, pueSeries = s.HourlyProfiles()
	shift := -s.UTCOffsetHours
	return alpha.ShiftHours(shift), beta.ShiftHours(shift), pueSeries.ShiftHours(shift)
}

// Catalog is a set of candidate sites sharing one representative-epoch grid.
type Catalog struct {
	grid  *timeseries.Grid
	sites []*Site
	byID  map[int]*Site
	// profiles caches the dense per-epoch matrices (see Profiles).
	profiles profilesOnce
}

func newCatalog(grid *timeseries.Grid, sites []*Site) *Catalog {
	byID := make(map[int]*Site, len(sites))
	for _, s := range sites {
		byID[s.ID] = s
	}
	return &Catalog{grid: grid, sites: sites, byID: byID}
}

// Options configures catalog generation.
type Options struct {
	// Count is the number of sites to generate.  Zero means the paper's
	// 1373 locations.
	Count int
	// Seed makes the catalog reproducible.  Two catalogs generated with
	// the same Count, Seed and RepresentativeDays are identical.
	Seed int64
	// RepresentativeDays is the number of representative days in the
	// reduction grid (default 4: one per season).
	RepresentativeDays int
}

// DefaultCount is the number of locations the paper's dataset contains.
const DefaultCount = 1373

// DefaultRepresentativeDays is the default reduction grid (one day per
// season), which keeps the provisioning LPs small while retaining the
// diurnal and seasonal structure the results depend on.
const DefaultRepresentativeDays = 4

// archetypeShare controls the mix of climates in a generated catalog.  The
// proportions are chosen so the capacity-factor CDFs have the shape of
// Fig. 3: most locations have solar capacity factors between ~13 % and ~23 %
// and wind capacity factors below solar, with a small set of exceptional
// wind sites at the top of the wind curve.
var archetypeShare = []struct {
	arch  weather.Archetype
	share float64
}{
	{weather.Temperate, 0.27},
	{weather.Continental, 0.20},
	{weather.Maritime, 0.14},
	{weather.Desert, 0.16},
	{weather.Tropical, 0.12},
	{weather.Ridge, 0.07},
	{weather.Polar, 0.04},
}

// economics holds the per-archetype price/distance distributions.
type economics struct {
	landMean, landSpread    float64 // USD per m²
	elecMean, elecSpread    float64 // USD per kWh
	distPowMean, distPowMax float64 // km
	distNetMean, distNetMax float64 // km
	plantMinKW, plantMaxKW  float64
	nameHint                string
}

func archetypeEconomics(a weather.Archetype) economics {
	switch a {
	case weather.Desert:
		return economics{landMean: 16, landSpread: 12, elecMean: 0.095, elecSpread: 0.025,
			distPowMean: 120, distPowMax: 450, distNetMean: 120, distNetMax: 450,
			plantMinKW: 100e3, plantMaxKW: 900e3, nameHint: "desert"}
	case weather.Temperate:
		return economics{landMean: 320, landSpread: 200, elecMean: 0.105, elecSpread: 0.030,
			distPowMean: 30, distPowMax: 120, distNetMean: 20, distNetMax: 100,
			plantMinKW: 300e3, plantMaxKW: 2.5e6, nameHint: "temperate"}
	case weather.Maritime:
		return economics{landMean: 420, landSpread: 250, elecMean: 0.125, elecSpread: 0.035,
			distPowMean: 35, distPowMax: 160, distNetMean: 25, distNetMax: 120,
			plantMinKW: 200e3, plantMaxKW: 1.8e6, nameHint: "maritime"}
	case weather.Ridge:
		return economics{landMean: 620, landSpread: 320, elecMean: 0.105, elecSpread: 0.030,
			distPowMean: 220, distPowMax: 460, distNetMean: 50, distNetMax: 200,
			plantMinKW: 150e3, plantMaxKW: 1.2e6, nameHint: "ridge"}
	case weather.Tropical:
		return economics{landMean: 30, landSpread: 22, elecMean: 0.085, elecSpread: 0.030,
			distPowMean: 140, distPowMax: 420, distNetMean: 150, distNetMax: 420,
			plantMinKW: 100e3, plantMaxKW: 800e3, nameHint: "tropical"}
	case weather.Continental:
		return economics{landMean: 70, landSpread: 55, elecMean: 0.055, elecSpread: 0.020,
			distPowMean: 20, distPowMax: 90, distNetMean: 15, distNetMax: 80,
			plantMinKW: 400e3, plantMaxKW: 3e6, nameHint: "continental"}
	case weather.Polar:
		return economics{landMean: 45, landSpread: 35, elecMean: 0.115, elecSpread: 0.035,
			distPowMean: 260, distPowMax: 600, distNetMean: 220, distNetMax: 600,
			plantMinKW: 100e3, plantMaxKW: 600e3, nameHint: "polar"}
	default:
		return archetypeEconomics(weather.Temperate)
	}
}

// Generate builds a reproducible catalog of candidate sites.
func Generate(opts Options) (*Catalog, error) {
	count := opts.Count
	if count == 0 {
		count = DefaultCount
	}
	if count < 1 {
		return nil, fmt.Errorf("location: invalid site count %d", count)
	}
	repDays := opts.RepresentativeDays
	if repDays == 0 {
		repDays = DefaultRepresentativeDays
	}
	grid, err := timeseries.NewGrid(repDays)
	if err != nil {
		return nil, fmt.Errorf("location: %w", err)
	}

	rng := rand.New(rand.NewSource(opts.Seed*2654435761 + 17))
	sites := make([]*Site, 0, count)
	counters := make(map[weather.Archetype]int, len(archetypeShare))

	for i := 0; i < count; i++ {
		arch := pickArchetype(rng, i, count)
		counters[arch]++
		seed := opts.Seed*1_000_003 + int64(i)
		site, err := generateSite(i, arch, seed, grid, rng)
		if err != nil {
			return nil, err
		}
		site.Name = fmt.Sprintf("%s-%04d", archetypeEconomics(arch).nameHint, counters[arch])
		sites = append(sites, site)
	}
	return newCatalog(grid, sites), nil
}

// pickArchetype assigns archetypes deterministically so the catalog has the
// configured proportions regardless of size, with the RNG breaking ties.
func pickArchetype(rng *rand.Rand, index, total int) weather.Archetype {
	// Deterministic stratified assignment: walk the cumulative shares.
	pos := (float64(index) + rng.Float64()*0.5) / float64(total)
	cum := 0.0
	for _, s := range archetypeShare {
		cum += s.share
		if pos < cum {
			return s.arch
		}
	}
	return archetypeShare[len(archetypeShare)-1].arch
}

func generateSite(id int, arch weather.Archetype, seed int64, grid *timeseries.Grid, rng *rand.Rand) (*Site, error) {
	tr := weather.Generate(arch, seed)
	alphaHourly := SolarSeries(tr)
	betaHourly := WindSeries(tr)
	pueHourly := pue.Series(tr.TemperatureC)

	// Spread sites across time zones; the stored per-epoch profiles are on
	// a shared UTC clock so the optimizer can follow the sun around the
	// globe.
	offset := rng.Intn(24)
	alphaUTC := alphaHourly.ShiftHours(-offset)
	betaUTC := betaHourly.ShiftHours(-offset)
	pueUTC := pueHourly.ShiftHours(-offset)

	eco := archetypeEconomics(arch)
	land := positiveNormal(rng, eco.landMean, eco.landSpread, 2)
	elec := positiveNormal(rng, eco.elecMean, eco.elecSpread, 0.02)
	distPow := boundedExp(rng, eco.distPowMean, eco.distPowMax, 2)
	distNet := boundedExp(rng, eco.distNetMean, eco.distNetMax, 1)
	plant := eco.plantMinKW + rng.Float64()*(eco.plantMaxKW-eco.plantMinKW)

	site := &Site{
		ID:                  id,
		Archetype:           arch,
		LatitudeDeg:         tr.LatitudeDeg,
		UTCOffsetHours:      offset,
		SolarCapacityFactor: alphaHourly.Mean(),
		WindCapacityFactor:  betaHourly.Mean(),
		AvgPUE:              pueHourly.Mean(),
		MaxPUE:              pueHourly.Max(),
		LandPriceUSDPerM2:   land,
		GridPriceUSDPerKWh:  elec,
		DistPowerKm:         distPow,
		DistNetworkKm:       distNet,
		NearestPlantKW:      plant,
		Alpha:               grid.Reduce(alphaUTC),
		Beta:                grid.Reduce(betaUTC),
		PUE:                 grid.Reduce(pueUTC),
		seed:                seed,
	}
	return site, nil
}

// positiveNormal draws a normal sample clamped to a floor.
func positiveNormal(rng *rand.Rand, mean, spread, floor float64) float64 {
	v := mean + rng.NormFloat64()*spread
	if v < floor {
		return floor
	}
	return v
}

// boundedExp draws an exponential-ish distance with the given mean, clamped
// to [min, max].
func boundedExp(rng *rand.Rand, mean, max, min float64) float64 {
	v := rng.ExpFloat64() * mean
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Grid returns the catalog's representative-epoch grid.
func (c *Catalog) Grid() *timeseries.Grid { return c.grid }

// Len returns the number of sites.
func (c *Catalog) Len() int { return len(c.sites) }

// Sites returns the catalog's sites.  The returned slice is a copy; the Site
// pointers are shared.
func (c *Catalog) Sites() []*Site {
	out := make([]*Site, len(c.sites))
	copy(out, c.sites)
	return out
}

// Site returns the site with the given ID.  IDs are stable across Subset, so
// a site keeps its identity when a filtered catalog is derived from the full
// one.
func (c *Catalog) Site(id int) (*Site, error) {
	if s, ok := c.byID[id]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("location: site %d not in this catalog (%d sites)", id, len(c.sites))
}

// Subset returns a new catalog (sharing the same grid) containing only the
// sites with the given IDs, in the given order.  The sites keep their IDs.
func (c *Catalog) Subset(ids []int) (*Catalog, error) {
	sites := make([]*Site, 0, len(ids))
	for _, id := range ids {
		s, err := c.Site(id)
		if err != nil {
			return nil, err
		}
		sites = append(sites, s)
	}
	return newCatalog(c.grid, sites), nil
}

// SolarCapacityFactors returns the per-site solar capacity factors.
func (c *Catalog) SolarCapacityFactors() []float64 {
	out := make([]float64, len(c.sites))
	for i, s := range c.sites {
		out[i] = s.SolarCapacityFactor
	}
	return out
}

// WindCapacityFactors returns the per-site wind capacity factors.
func (c *Catalog) WindCapacityFactors() []float64 {
	out := make([]float64, len(c.sites))
	for i, s := range c.sites {
		out[i] = s.WindCapacityFactor
	}
	return out
}

// AvgPUEs returns the per-site average PUEs.
func (c *Catalog) AvgPUEs() []float64 {
	out := make([]float64, len(c.sites))
	for i, s := range c.sites {
		out[i] = s.AvgPUE
	}
	return out
}

// TopByWindCF returns the n sites with the highest wind capacity factor,
// best first.
func (c *Catalog) TopByWindCF(n int) []*Site {
	return c.topBy(n, func(s *Site) float64 { return s.WindCapacityFactor })
}

// TopBySolarCF returns the n sites with the highest solar capacity factor,
// best first.
func (c *Catalog) TopBySolarCF(n int) []*Site {
	return c.topBy(n, func(s *Site) float64 { return s.SolarCapacityFactor })
}

func (c *Catalog) topBy(n int, key func(*Site) float64) []*Site {
	sorted := c.Sites()
	sort.Slice(sorted, func(i, j int) bool { return key(sorted[i]) > key(sorted[j]) })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
