package location

import (
	"sync"

	"greencloud/internal/series"
)

// Profiles is a dense, read-only view of the catalog's per-epoch site
// profiles: the α (solar), β (wind) and PUE series of every site, each
// stored as one epoch-major series.Block (sites × epochs, contiguous).
// The Block layout keeps the evaluator's inner loops cache-friendly (no
// per-site pointer chasing) and is the shape the series kernels stream
// through.
//
// Profiles is built once per catalog (lazily, on first use) and shared by
// all readers; per the series.Block read-only contract, it must not be
// mutated after construction.
type Profiles struct {
	rows  map[int]int // site ID → row index
	alpha series.Block
	beta  series.Block
	pue   series.Block
}

// Epochs returns the number of epochs per site row.
func (p *Profiles) Epochs() int { return p.alpha.Epochs() }

// Row returns the matrix row for the given site ID.
func (p *Profiles) Row(siteID int) (int, bool) {
	r, ok := p.rows[siteID]
	return r, ok
}

// Alpha returns the solar production-factor series of the given row.  The
// returned slice aliases the shared Block; callers must not modify it.
func (p *Profiles) Alpha(row int) []float64 {
	return p.alpha.Row(row)
}

// Beta returns the wind production-factor series of the given row.
func (p *Profiles) Beta(row int) []float64 {
	return p.beta.Row(row)
}

// PUE returns the PUE series of the given row.
func (p *Profiles) PUE(row int) []float64 {
	return p.pue.Row(row)
}

// profilesOnce is attached to the catalog for lazy one-time construction.
type profilesOnce struct {
	once sync.Once
	p    *Profiles
}

// Profiles returns the catalog's dense profile matrices, building them on
// first use.  Subsequent calls return the same shared instance, so the cost
// of densifying the catalog is paid once no matter how many evaluators are
// created on top of it.
func (c *Catalog) Profiles() *Profiles {
	c.profiles.once.Do(func() {
		epochs := c.grid.Len()
		n := len(c.sites)
		p := &Profiles{rows: make(map[int]int, n)}
		p.alpha.Reshape(n, epochs)
		p.beta.Reshape(n, epochs)
		p.pue.Reshape(n, epochs)
		for row, s := range c.sites {
			p.rows[s.ID] = row
			copy(p.alpha.Row(row), s.Alpha)
			copy(p.beta.Row(row), s.Beta)
			copy(p.pue.Row(row), s.PUE)
		}
		c.profiles.p = p
	})
	return c.profiles.p
}
