package location

import "sync"

// Profiles is a dense, read-only view of the catalog's per-epoch site
// profiles: the α (solar), β (wind) and PUE series of every site stored in
// one contiguous site-major matrix each.  The flat layout keeps the
// evaluator's inner loops cache-friendly (no per-site pointer chasing) and
// is SIMD-friendly should the hot loops ever be vectorized.
//
// Profiles is built once per catalog (lazily, on first use) and shared by
// all readers; it must not be mutated.
type Profiles struct {
	epochs int
	rows   map[int]int // site ID → row index
	alpha  []float64   // len = sites × epochs, row-major
	beta   []float64
	pue    []float64
}

// Epochs returns the number of epochs per site row.
func (p *Profiles) Epochs() int { return p.epochs }

// Row returns the matrix row for the given site ID.
func (p *Profiles) Row(siteID int) (int, bool) {
	r, ok := p.rows[siteID]
	return r, ok
}

// Alpha returns the solar production-factor series of the given row.  The
// returned slice aliases the shared matrix; callers must not modify it.
func (p *Profiles) Alpha(row int) []float64 {
	return p.alpha[row*p.epochs : (row+1)*p.epochs]
}

// Beta returns the wind production-factor series of the given row.
func (p *Profiles) Beta(row int) []float64 {
	return p.beta[row*p.epochs : (row+1)*p.epochs]
}

// PUE returns the PUE series of the given row.
func (p *Profiles) PUE(row int) []float64 {
	return p.pue[row*p.epochs : (row+1)*p.epochs]
}

// profilesOnce is attached to the catalog for lazy one-time construction.
type profilesOnce struct {
	once sync.Once
	p    *Profiles
}

// Profiles returns the catalog's dense profile matrices, building them on
// first use.  Subsequent calls return the same shared instance, so the cost
// of densifying the catalog is paid once no matter how many evaluators are
// created on top of it.
func (c *Catalog) Profiles() *Profiles {
	c.profiles.once.Do(func() {
		epochs := c.grid.Len()
		n := len(c.sites)
		p := &Profiles{
			epochs: epochs,
			rows:   make(map[int]int, n),
			alpha:  make([]float64, n*epochs),
			beta:   make([]float64, n*epochs),
			pue:    make([]float64, n*epochs),
		}
		for row, s := range c.sites {
			p.rows[s.ID] = row
			copy(p.alpha[row*epochs:], s.Alpha)
			copy(p.beta[row*epochs:], s.Beta)
			copy(p.pue[row*epochs:], s.PUE)
		}
		c.profiles.p = p
	})
	return c.profiles.p
}
