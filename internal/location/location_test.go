package location

import (
	"math"
	"testing"
	"testing/quick"

	"greencloud/internal/weather"
)

func TestSolarAlphaBasics(t *testing.T) {
	if got := SolarAlpha(0, 25); got != 0 {
		t.Errorf("SolarAlpha(0,25) = %v, want 0", got)
	}
	if got := SolarAlpha(-10, 25); got != 0 {
		t.Errorf("SolarAlpha(-10,25) = %v, want 0", got)
	}
	// At STC-ish conditions (1000 W/m², cool ambient so cell ≈ 25 °C is
	// impossible outdoors; just check the value is large but ≤ 1).
	v := SolarAlpha(1000, 20)
	if v <= 0.6 || v > 1 {
		t.Errorf("SolarAlpha(1000,20) = %v, want in (0.6, 1]", v)
	}
	// Hot weather derates output.
	if SolarAlpha(800, 45) >= SolarAlpha(800, 5) {
		t.Error("hot ambient should derate PV output")
	}
}

func TestSolarAlphaPropertyBounds(t *testing.T) {
	f := func(irr, temp float64) bool {
		irr = math.Mod(math.Abs(irr), 1400)
		temp = math.Mod(temp, 60)
		a := SolarAlpha(irr, temp)
		return a >= 0 && a <= 1 && !math.IsNaN(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindBetaPowerCurve(t *testing.T) {
	const p, tc = 100.0, 15.0
	if got := WindBeta(2.0, p, tc); got != 0 {
		t.Errorf("below cut-in: beta = %v, want 0", got)
	}
	if got := WindBeta(30.0, p, tc); got != 0 {
		t.Errorf("above cut-out: beta = %v, want 0", got)
	}
	rated := WindBeta(15.0, p, tc)
	if rated < 0.85 || rated > 1 {
		t.Errorf("rated-speed beta = %v, want near 1", rated)
	}
	mid := WindBeta(8.0, p, tc)
	if mid <= 0 || mid >= rated {
		t.Errorf("mid-speed beta = %v, want between 0 and rated %v", mid, rated)
	}
	// Monotone between cut-in and rated.
	prev := 0.0
	for v := windCutInMs; v < windRatedMs; v += 0.5 {
		b := WindBeta(v, p, tc)
		if b < prev {
			t.Fatalf("beta not monotone at %v m/s", v)
		}
		prev = b
	}
	// Thinner air (high altitude / hot) produces less.
	if WindBeta(9, 85, 25) >= WindBeta(9, 101, 0) {
		t.Error("lower air density should reduce wind output")
	}
}

func TestWindBetaPropertyBounds(t *testing.T) {
	f := func(v, pr, tc float64) bool {
		v = math.Mod(math.Abs(v), 40)
		pr = 80 + math.Mod(math.Abs(pr), 25)
		tc = math.Mod(tc, 50)
		b := WindBeta(v, pr, tc)
		return b >= 0 && b <= 1 && !math.IsNaN(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateCatalogSmall(t *testing.T) {
	cat, err := Generate(Options{Count: 60, Seed: 1, RepresentativeDays: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if cat.Len() != 60 {
		t.Fatalf("Len() = %d, want 60", cat.Len())
	}
	if cat.Grid().Days() != 2 {
		t.Errorf("grid days = %d, want 2", cat.Grid().Days())
	}
	seen := map[string]bool{}
	for _, s := range cat.Sites() {
		if seen[s.Name] {
			t.Errorf("duplicate site name %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Alpha) != cat.Grid().Len() || len(s.Beta) != cat.Grid().Len() || len(s.PUE) != cat.Grid().Len() {
			t.Fatalf("site %s profile lengths don't match grid", s.Name)
		}
		if s.SolarCapacityFactor <= 0 || s.SolarCapacityFactor > 0.35 {
			t.Errorf("site %s solar CF %v implausible", s.Name, s.SolarCapacityFactor)
		}
		if s.WindCapacityFactor < 0 || s.WindCapacityFactor > 0.75 {
			t.Errorf("site %s wind CF %v implausible", s.Name, s.WindCapacityFactor)
		}
		if s.AvgPUE < 1.05 || s.AvgPUE > 1.25 {
			t.Errorf("site %s avg PUE %v implausible", s.Name, s.AvgPUE)
		}
		if s.MaxPUE < s.AvgPUE-1e-6 {
			t.Errorf("site %s max PUE below average", s.Name)
		}
		if s.GridPriceUSDPerKWh <= 0 || s.LandPriceUSDPerM2 <= 0 {
			t.Errorf("site %s has non-positive prices", s.Name)
		}
		if s.DistPowerKm < 0 || s.DistNetworkKm < 0 || s.NearestPlantKW <= 0 {
			t.Errorf("site %s has invalid distances or plant size", s.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Options{Count: 40, Seed: 9, RepresentativeDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Options{Count: 40, Seed: 9, RepresentativeDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sites() {
		sa, _ := a.Site(i)
		sb, _ := b.Site(i)
		if sa.SolarCapacityFactor != sb.SolarCapacityFactor ||
			sa.WindCapacityFactor != sb.WindCapacityFactor ||
			sa.LandPriceUSDPerM2 != sb.LandPriceUSDPerM2 {
			t.Fatalf("site %d differs between identically-seeded catalogs", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Options{Count: -1}); err == nil {
		t.Error("negative count should error")
	}
	if _, err := Generate(Options{Count: 5, RepresentativeDays: 9999}); err == nil {
		t.Error("invalid representative days should error")
	}
}

func TestCatalogDistributionShape(t *testing.T) {
	// A moderately sized catalog must reproduce the qualitative facts of
	// Figs. 3 and 5: (a) a small minority of sites has wind CF far above
	// solar, (b) the majority has solar CF in the 0.10–0.25 band, and
	// (c) the best wind sites are cold (low PUE) while the best solar sites
	// are warm (higher PUE).
	cat, err := Generate(Options{Count: 300, Seed: 3, RepresentativeDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	highWind := 0
	solarMidBand := 0
	for _, s := range cat.Sites() {
		if s.WindCapacityFactor > 0.35 {
			highWind++
		}
		if s.SolarCapacityFactor >= 0.10 && s.SolarCapacityFactor <= 0.25 {
			solarMidBand++
		}
	}
	if highWind == 0 {
		t.Error("no exceptional wind sites in the catalog")
	}
	if frac := float64(highWind) / float64(cat.Len()); frac > 0.25 {
		t.Errorf("too many exceptional wind sites: %.0f%%", 100*frac)
	}
	if frac := float64(solarMidBand) / float64(cat.Len()); frac < 0.6 {
		t.Errorf("only %.0f%% of sites in the 10–25%% solar CF band, want most", 100*frac)
	}

	topWind := cat.TopByWindCF(10)
	topSolar := cat.TopBySolarCF(10)
	avgPUE := func(sites []*Site) float64 {
		sum := 0.0
		for _, s := range sites {
			sum += s.AvgPUE
		}
		return sum / float64(len(sites))
	}
	if avgPUE(topWind) >= avgPUE(topSolar) {
		t.Errorf("best wind sites should have lower PUE (%.3f) than best solar sites (%.3f)",
			avgPUE(topWind), avgPUE(topSolar))
	}
	if topWind[0].WindCapacityFactor < 0.3 {
		t.Errorf("best wind CF %.2f looks too low", topWind[0].WindCapacityFactor)
	}
	if topSolar[0].SolarCapacityFactor < 0.17 {
		t.Errorf("best solar CF %.2f looks too low", topSolar[0].SolarCapacityFactor)
	}
}

func TestSubsetAndSiteLookup(t *testing.T) {
	cat, err := Generate(Options{Count: 20, Seed: 4, RepresentativeDays: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Site(20); err == nil {
		t.Error("out-of-range site lookup should error")
	}
	sub, err := cat.Subset([]int{3, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 {
		t.Fatalf("subset length %d, want 3", sub.Len())
	}
	// IDs are stable across Subset: site 7 keeps its identity, site 1 is
	// not part of the subset.
	orig, _ := cat.Site(7)
	got, err := sub.Site(7)
	if err != nil || got.Name != orig.Name {
		t.Errorf("subset lost site 7: %v, %v", got, err)
	}
	if _, err := sub.Site(1); err == nil {
		t.Error("site 1 should not be in the subset")
	}
	if sub.Sites()[1].Name != orig.Name {
		t.Error("subset order not preserved")
	}
	if _, err := cat.Subset([]int{99}); err == nil {
		t.Error("subset with invalid ID should error")
	}
}

func TestHourlyProfilesConsistentWithSummary(t *testing.T) {
	cat, err := Generate(Options{Count: 6, Seed: 8, RepresentativeDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := cat.Site(0)
	alpha, beta, pueSeries := s.HourlyProfiles()
	if math.Abs(alpha.Mean()-s.SolarCapacityFactor) > 1e-9 {
		t.Errorf("hourly alpha mean %v != stored solar CF %v", alpha.Mean(), s.SolarCapacityFactor)
	}
	if math.Abs(beta.Mean()-s.WindCapacityFactor) > 1e-9 {
		t.Errorf("hourly beta mean %v != stored wind CF %v", beta.Mean(), s.WindCapacityFactor)
	}
	if math.Abs(pueSeries.Mean()-s.AvgPUE) > 1e-9 {
		t.Errorf("hourly PUE mean %v != stored avg PUE %v", pueSeries.Mean(), s.AvgPUE)
	}
	if s.WeatherTrace().Archetype != s.Archetype {
		t.Error("weather trace archetype mismatch")
	}
}

func TestCapacityFactorAccessors(t *testing.T) {
	cat, err := Generate(Options{Count: 10, Seed: 2, RepresentativeDays: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.SolarCapacityFactors()) != 10 || len(cat.WindCapacityFactors()) != 10 || len(cat.AvgPUEs()) != 10 {
		t.Error("accessor slices have wrong lengths")
	}
	for _, a := range weather.Archetypes() {
		_ = archetypeEconomics(a) // must not panic and must return sane values
		eco := archetypeEconomics(a)
		if eco.elecMean <= 0 || eco.landMean <= 0 {
			t.Errorf("%v economics invalid", a)
		}
	}
}

func TestUTCOffsetsSpreadAndShiftProfiles(t *testing.T) {
	cat, err := Generate(Options{Count: 80, Seed: 5, RepresentativeDays: 1})
	if err != nil {
		t.Fatal(err)
	}
	offsets := map[int]bool{}
	for _, s := range cat.Sites() {
		if s.UTCOffsetHours < 0 || s.UTCOffsetHours > 23 {
			t.Fatalf("site %s has invalid UTC offset %d", s.Name, s.UTCOffsetHours)
		}
		offsets[s.UTCOffsetHours] = true
	}
	if len(offsets) < 10 {
		t.Errorf("only %d distinct time zones across 80 sites; expected a world-wide spread", len(offsets))
	}
	// The UTC-shifted hourly profile must match the stored per-epoch alpha
	// profile in its yearly mean and must differ from the local profile in
	// phase for a site with a non-zero offset.
	for _, s := range cat.Sites() {
		if s.UTCOffsetHours == 0 {
			continue
		}
		alphaUTC, _, _ := s.HourlyProfilesUTC()
		alphaLocal, _, _ := s.HourlyProfiles()
		if math.Abs(alphaUTC.Mean()-alphaLocal.Mean()) > 1e-12 {
			t.Fatal("shifting changed the mean")
		}
		if alphaUTC.AtDayHour(100, 12) == alphaLocal.AtDayHour(100, 12) &&
			alphaUTC.AtDayHour(200, 12) == alphaLocal.AtDayHour(200, 12) &&
			alphaUTC.AtDayHour(300, 12) == alphaLocal.AtDayHour(300, 12) {
			t.Errorf("site %s (offset %d) UTC profile identical to local profile", s.Name, s.UTCOffsetHours)
		}
		break
	}
}
