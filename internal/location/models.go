// Package location builds the catalog of candidate datacenter sites used by
// the placement framework: for every site it derives the solar production
// factor α(d,t), the wind production factor β(d,t), the PUE profile, land and
// grid-electricity prices, and the distances to the nearest transmission line
// and network backbone.
//
// The paper uses 1373 real TMY locations; we generate the same number of
// synthetic sites from climate archetypes (see internal/weather) with
// correlated economic attributes, preserving the joint distribution that
// drives the siting results: windy ridge sites are cold (low PUE) but remote
// and land-expensive, sunny desert sites are hot (higher PUE) with cheap
// land, and continental sites near infrastructure offer the cheapest brown
// energy.
package location

import (
	"math"

	"greencloud/internal/timeseries"
	"greencloud/internal/weather"
)

// Photovoltaic model constants.  The installed capacity of a PV plant is its
// rating at standard test conditions (1000 W/m², 25 °C cell temperature), so
// the production factor α is relative to that rating; module efficiency is
// already folded into the rating and only temperature derating and
// balance-of-system losses remain.
const (
	// pvReferenceIrradiance is the STC irradiance in W/m².
	pvReferenceIrradiance = 1000.0
	// pvTempCoefficient is the output derating per °C of cell temperature
	// above 25 °C (typical multi-crystalline silicon).
	pvTempCoefficient = 0.005
	// pvNOCTRise is the cell temperature rise above ambient at full sun
	// (°C per W/m² of irradiance), from the NOCT model.
	pvNOCTRise = 30.0 / 800.0
	// pvSystemEfficiency bundles inverter and DC→AC conversion losses.
	pvSystemEfficiency = 0.90
)

// Wind turbine model constants, loosely following the Enercon E-126 that the
// paper uses (7.6 MW rated, ~50 % aerodynamic efficiency).
const (
	windCutInMs        = 3.0
	windRatedMs        = 12.5
	windCutOutMs       = 25.0
	windSystemLoss     = 0.95
	standardAirDensity = 1.225 // kg/m³ at sea level, 15 °C
	gasConstantDryAir  = 287.05
)

// SolarAlpha returns the instantaneous solar production factor α for the
// given irradiance (W/m²) and ambient temperature (°C): the fraction of the
// installed (STC-rated) capacity the plant produces after temperature
// derating and conversion losses.
func SolarAlpha(irradianceWm2, ambientC float64) float64 {
	if irradianceWm2 <= 0 {
		return 0
	}
	cellTemp := ambientC + pvNOCTRise*irradianceWm2
	derate := 1 - pvTempCoefficient*(cellTemp-25)
	if derate < 0 {
		derate = 0
	}
	alpha := (irradianceWm2 / pvReferenceIrradiance) * derate * pvSystemEfficiency
	if alpha < 0 {
		return 0
	}
	if alpha > 1 {
		return 1
	}
	return alpha
}

// WindBeta returns the instantaneous wind production factor β for the given
// wind speed (m/s), station pressure (kPa) and air temperature (°C): the
// fraction of the turbine's rated capacity it produces.
func WindBeta(windMs, pressureKPa, tempC float64) float64 {
	if windMs < windCutInMs || windMs >= windCutOutMs {
		return 0
	}
	density := pressureKPa * 1000 / (gasConstantDryAir * (tempC + 273.15))
	densityRatio := density / standardAirDensity
	var frac float64
	if windMs >= windRatedMs {
		frac = 1
	} else {
		// Cubic ramp between cut-in and rated speed.
		frac = math.Pow((windMs-windCutInMs)/(windRatedMs-windCutInMs), 3)
	}
	beta := frac * densityRatio * windSystemLoss
	if beta > 1 {
		beta = 1
	}
	return beta
}

// SolarSeries derives the hourly α(t) trace from a weather trace.
func SolarSeries(tr *weather.Trace) *timeseries.Hourly {
	return timeseries.Generate(func(day, hour int) float64 {
		return SolarAlpha(tr.IrradianceWm2.AtDayHour(day, hour), tr.TemperatureC.AtDayHour(day, hour))
	})
}

// WindSeries derives the hourly β(t) trace from a weather trace.
func WindSeries(tr *weather.Trace) *timeseries.Hourly {
	return timeseries.Generate(func(day, hour int) float64 {
		return WindBeta(
			tr.WindSpeedMs.AtDayHour(day, hour),
			tr.PressureKPa.AtDayHour(day, hour),
			tr.TemperatureC.AtDayHour(day, hour),
		)
	})
}
