// GDFS: using GreenNebula's distributed file system directly.
//
// This example builds a three-datacenter GDFS cluster, stores a VM disk
// image, shows how writes invalidate remote replicas and how the background
// re-replicator repairs them, and measures how much data a migration to each
// datacenter would have to ship at any point in time.
package main

import (
	"bytes"
	"fmt"
	"log"

	"greencloud/internal/gdfs"
)

func main() {
	master := gdfs.NewMaster(2)
	cluster := gdfs.NewCluster(master)
	for _, dc := range []string{"kenya", "mexico", "guam"} {
		if err := cluster.AddWorker(gdfs.NewWorker(gdfs.WorkerID(dc)), dc); err != nil {
			log.Fatal(err)
		}
	}
	kenya, err := cluster.NewClient("kenya")
	if err != nil {
		log.Fatal(err)
	}

	// The VM's disk image starts its life in Kenya.
	const disk = "/vm/hpc-001/disk"
	fi, err := kenya.Create(disk, 32<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s: %d MB in %d blocks\n", disk, fi.Size>>20, len(fi.Blocks))

	// Replicate it so Mexico holds a warm copy.
	copied := cluster.ReplicateOnce()
	fmt.Printf("background replication copied %d blocks\n", copied)

	// The VM dirties a couple of blocks while running in Kenya.
	payload := bytes.Repeat([]byte{0xCA}, int(fi.BlockSize))
	for _, block := range []int{0, 3} {
		if err := kenya.WriteBlock(disk, block, payload); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("VM dirtied blocks 0 and 3 in Kenya (remote replicas invalidated)")

	// How much would a migration have to ship right now?
	for _, dest := range []gdfs.WorkerID{"mexico", "guam"} {
		pending, err := kenya.PendingMigrationBytes(disk, dest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pending migration bytes to %-7s %6.1f MB\n", dest, float64(pending)/(1<<20))
	}

	// Re-replication repairs the stale copies in the background.
	cluster.ReplicateOnce()
	pending, err := kenya.PendingMigrationBytes(disk, "mexico")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after re-replication, pending bytes to mexico: %.1f MB\n", float64(pending)/(1<<20))

	// A client in Mexico reads the freshest data regardless of where it was
	// written.
	mexico, err := cluster.NewClient("mexico")
	if err != nil {
		log.Fatal(err)
	}
	data, err := mexico.ReadBlock(disk, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mexico reads block 0: first byte 0x%X (written in Kenya)\n", data[0])
}
