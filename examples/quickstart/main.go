// Quickstart: site and provision a small follow-the-renewables cloud.
//
// This example builds a synthetic catalog of candidate locations, asks the
// placement library for a 20 MW network that gets at least half of its
// energy from on-site renewables (with grid net metering as storage), and
// prints where the datacenters go, how large their solar/wind plants are and
// what the network costs per month.
package main

import (
	"fmt"
	"log"

	"greencloud/placement"
)

func main() {
	// A modest catalog keeps the quickstart fast; use placement.DefaultCatalog
	// for the paper-scale 1373 locations.
	catalog, err := placement.NewCatalog(placement.CatalogOptions{Locations: 150, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	req := placement.Request{
		CapacityMW:    20,
		GreenFraction: 0.5,
		Storage:       placement.NetMetering,
		Sources:       placement.SolarAndWind,
	}
	solution, err := catalog.Place(req, placement.SearchBudget{Iterations: 60, Chains: 2, FilterKeep: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Follow-the-renewables network:")
	fmt.Println(solution.Summary())
	fmt.Printf("\nGreen fraction achieved: %.1f%%\n", 100*solution.GreenFraction)
	fmt.Printf("Monthly cost: $%.2fM\n", solution.MonthlyCostUSD/1e6)
	for _, site := range solution.Sites {
		fmt.Printf("  %-18s %5.1f MW IT, %6.1f MW solar, %6.1f MW wind\n",
			site.Name, site.CapacityMW, site.SolarMW, site.WindMW)
	}
}
