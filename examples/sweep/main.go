// Sweep: cost of a green cloud versus the desired green-energy percentage.
//
// This example reproduces the shape of Figs. 8–10 of the paper on a small
// catalog: it sites a 20 MW network for increasing green-energy targets
// under the three storage regimes (net metering, batteries, no storage) and
// prints the monthly cost of each solution, showing that storage is what
// keeps high green fractions affordable.
package main

import (
	"fmt"
	"log"

	"greencloud/placement"
)

func main() {
	catalog, err := placement.NewCatalog(placement.CatalogOptions{Locations: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	budget := placement.SearchBudget{Iterations: 40, Chains: 2, FilterKeep: 12, Seed: 3}

	storages := []struct {
		name string
		mode placement.StorageMode
	}{
		{"net metering", placement.NetMetering},
		{"batteries", placement.Batteries},
		{"no storage", placement.NoStorage},
	}
	greens := []float64{0, 0.5, 1.0}

	fmt.Println("Monthly cost ($M) of a 20 MW network vs. desired green percentage")
	fmt.Printf("%-14s", "storage")
	for _, g := range greens {
		fmt.Printf("%8.0f%%", g*100)
	}
	fmt.Println()
	for _, st := range storages {
		fmt.Printf("%-14s", st.name)
		for _, g := range greens {
			sol, err := catalog.Place(placement.Request{
				CapacityMW:    20,
				GreenFraction: g,
				Storage:       st.mode,
				Sources:       placement.SolarAndWind,
			}, budget)
			if err != nil {
				fmt.Printf("%9s", "n/a")
				continue
			}
			fmt.Printf("%9.1f", sol.MonthlyCostUSD/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper): costs rise gently with the green percentage when")
	fmt.Println("storage is available, and explode at 100% green without any storage.")
}
