// Follow: a day of follow-the-renewables VM migration (the Fig. 15 scenario).
//
// Three solar-powered datacenters spread across time zones host a fleet of
// HPC virtual machines.  Every hour GreenNebula's scheduler predicts green
// energy production, re-partitions the load, and live-migrates VMs towards
// the datacenter where the sun is shining; GDFS ships only the disk blocks
// dirtied since the last replication.
package main

import (
	"fmt"
	"log"

	"greencloud/placement"
	"greencloud/renewables"
)

func main() {
	catalog, err := placement.NewCatalog(placement.CatalogOptions{Locations: 120, Seed: 21, RepresentativeDays: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Pick three sunny sites spread around the globe and overbuild their
	// solar plants, like the paper's 100%-green no-storage network.
	siteIdx := renewables.BestSolarSitesAcrossTimeZones(catalog, 3)
	if len(siteIdx) < 3 {
		log.Fatal("not enough sites in the catalog")
	}
	const fleetKW = 0.27 // 9 VMs × 30 W
	var dcs []renewables.Datacenter
	for _, idx := range siteIdx {
		dcs = append(dcs, renewables.Datacenter{
			LocationIndex: idx,
			CapacityKW:    fleetKW,
			SolarKW:       fleetKW * 8,
			WindKW:        fleetKW * 0.1,
		})
	}

	report, err := renewables.Run(renewables.Config{
		Catalog:          catalog,
		Datacenters:      dcs,
		VMs:              9,
		StartDay:         172, // midsummer in the northern hemisphere
		Hours:            24,
		HorizonHours:     24,
		WANBandwidthMbps: 100,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hour  datacenter            green(kW)  load(kW)  migration(kW)  brown(kW)  VMs")
	for _, s := range report.Trace {
		fmt.Printf("%4d  %-20s %9.2f %9.2f %14.2f %10.2f %4d\n",
			s.Hour, s.Datacenter, s.GreenKW, s.LoadKW, s.MigrationKW, s.BrownKW, s.VMs)
	}
	fmt.Printf("\n%d migrations over the day, %.1f%% of demand served by green energy,\n",
		report.Migrations, 100*report.GreenFraction)
	fmt.Printf("%.3f kWh of migration overhead, average scheduling time %.0f ms\n",
		report.MigrationEnergyKWh, report.AvgScheduleMillis)
}
