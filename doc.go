// Package greencloud reproduces "Building Green Cloud Services at Low Cost"
// (Berral, Goiri, Nguyen, Gavaldà, Torres, Bianchini — ICDCS 2014) as a Go
// library.
//
// The repository has two public entry points:
//
//   - package placement sites and provisions a network of datacenters with
//     on-site solar/wind plants and energy storage so that a desired
//     fraction of the service's energy is green, at minimum monthly cost
//     (the paper's framework, optimization problem and heuristic solver);
//   - package renewables runs GreenNebula, the follow-the-renewables VM
//     placement and migration system (hourly scheduler, live migration over
//     an emulated WAN, GDFS distributed file system).
//
// Everything the paper's evaluation depends on — synthetic typical
// meteorological years, PV and wind-turbine production models, the PUE
// model, the cost model with financing and amortization, an LP/MILP solver,
// simulated annealing, the within-datacenter VM manager and the emulated
// wide-area network — is implemented from scratch under internal/.
//
// # The evaluator hot path
//
// The heuristic solver evaluates Chains × MaxIterations candidate sitings
// per solve, and every sweep experiment solves once per green-fraction
// point per storage mode per source mix, so the siting evaluator is the
// system's hot path.  It is built around internal/core's Evaluator: a
// reusable object bound to one (catalog, spec) pair that owns every scratch
// buffer the pipeline needs — flattened compute/migration/demand/green
// matrices, sort index buffers, the storage-balance series — plus
// per-catalog caches of the brown-cost rank key, the unit green production
// costs and the solar/wind technology split of every site.
//
// Reuse contract: scratch grows to the largest candidate set seen and is
// then reused, so a steady-state EvaluateCost call performs zero heap
// allocations (BenchmarkEvaluateSteadyState and the core tests enforce
// exactly 0 allocs/op); the full Evaluate method allocates only the
// returned Solution.  An Evaluator is not safe for concurrent use — the
// parallel annealing chains draw evaluators from a sync.Pool, and the
// sweep experiments fan points across a GOMAXPROCS-sized worker pool with
// one solver (and thus one pool) per point.  Annealing chains are fully
// independent with deterministic per-chain RNG seeds and a deterministic
// best-of merge, so a fixed seed yields a bit-identical Solution whether
// the chains run sequentially or in parallel.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured-versus-paper results.
package greencloud
