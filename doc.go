// Package greencloud reproduces "Building Green Cloud Services at Low Cost"
// (Berral, Goiri, Nguyen, Gavaldà, Torres, Bianchini — ICDCS 2014) as a Go
// library.
//
// The repository has two public entry points:
//
//   - package placement sites and provisions a network of datacenters with
//     on-site solar/wind plants and energy storage so that a desired
//     fraction of the service's energy is green, at minimum monthly cost
//     (the paper's framework, optimization problem and heuristic solver);
//   - package renewables runs GreenNebula, the follow-the-renewables VM
//     placement and migration system (hourly scheduler, live migration over
//     an emulated WAN, GDFS distributed file system).
//
// Everything the paper's evaluation depends on — synthetic typical
// meteorological years, PV and wind-turbine production models, the PUE
// model, the cost model with financing and amortization, an LP/MILP solver,
// simulated annealing, the within-datacenter VM manager and the emulated
// wide-area network — is implemented from scratch under internal/.
//
// # The LP layer: bounded-variable revised simplex with basis reuse
//
// Every linear program in the system — the scheduler's 48-hour partition
// LP, the branch-and-bound relaxations of internal/milp, the exact
// evaluator's siting MILP — runs on internal/lp's revised simplex.  The
// standard form is bounded: minimize c·y s.t. A·y = b, 0 ≤ y ≤ u, with
// exactly one row per model constraint — finite variable bounds are
// column data (shifted, or mirrored when only the upper bound is finite),
// never rows, so the basis dimension of a bound-heavy model like a milp
// relaxation is its constraint count instead of constraints plus bounds.
// Nonbasic columns carry an at-lower/at-upper status, pricing is signed by
// that status, and the Harris-style two-pass ratio test caps the step at
// the entering column's opposite bound — when that cap binds first, the
// iteration is a bound flip: a status bit and a basic-solution update with
// no basis change, no eta, no LU aging.  The form is stored column-wise
// (CSC, built once per solve); the basis matrix is LU-factorized by a
// Gilbert–Peierls sparse factorization with partial pivoting, updated by a
// product-form eta file and refactorized every 64 pivots; FTRAN/BTRAN
// triangular solves replace the dense tableau's whole-row elimination.
// Pricing maintains the reduced-cost row incrementally (one sparse BTRAN
// of the leaving unit vector plus one CSC pass per pivot), verifies every
// nominee exactly from its FTRAN column, and only declares optimality
// after an exact rebuild.
//
// Warm starts thread the basis up the stack: a Solution captures its
// optimal basis in model-level terms (lp.Basis — per row, which
// variable/slack/artificial was basic, plus the nonbasic-at-upper set,
// keyed by identities that survive re-standardization), and
// Problem.SolveFrom restarts from it after SetBounds/SetRHS/SetCoeff/
// SetCost mutations — typically a short bounded dual-simplex run (a basic
// value may violate either of its bounds), since bound edits move the
// at-bound columns with them and preserve dual feasibility.  internal/milp
// keeps one shared relaxation Problem whose branch bounds are edited in
// place, so a branch-and-bound node adds zero rows and re-solves from its
// parent's basis; internal/sched keeps a per-Scheduler Problem plus basis
// across scheduling rounds, with each site's load capacity expressed as an
// implicit variable bound (full-capacity hours park the load column
// nonbasic-at-upper); the exact evaluator inherits both.  A basis that no
// longer translates silently falls back to a cold two-phase solve, so
// reuse can cost time but never correctness, and the bounded core is
// pinned against the frozen pre-refactor dense-tableau solver (which still
// expands every finite bound into an explicit row) by a 600-problem
// randomized differential test, half of it bound-heavy (identical Status
// everywhere, objectives within 1e-9).
//
// # The series layer: epoch-major blocks and fused kernels
//
// All dense per-epoch arithmetic lives in internal/series: an epoch-major
// Block type (rows × epochs float64, contiguous, row r at
// data[r·E, (r+1)·E)) plus a small set of fused element-wise kernels
// (WeightedSum, AddMul, AXPY, Scale, DotWeighted, Sum, SumPositive,
// ScaledDrop, Zero and a per-row rolling Digest; Sum and DotWeighted are
// 4-way unrolled with a single accumulator, so their addition chains — and
// therefore their bits — match the plain loops).  location.Profiles hands
// out its α/β/PUE matrices as read-only Block rows; core.Evaluator's
// scratch matrices (compute, migration, demand, green availability) are
// single-owner scratch Blocks; internal/energy's balancer and
// internal/sched's per-slot load math run through the same kernels.  One
// loop dialect instead of four means every hot path improves at once when
// a kernel does.
//
// Aliasing/mutability contract: Block.Row clips the returned slice's
// capacity at the row boundary, so writes through one row can never reach
// a neighbour; shared Blocks (Profiles) are read-only after construction,
// scratch Blocks are owned by one goroutine and fully overwritten before
// they are read.  The kernels are written in the bounds-check-elimination
// style (trip count from dst, every operand pinned with s = s[:n] before
// the loop, no interface indirection) and each is pinned bit-identical to
// a naive scalar reference by the differential suite in
// internal/series/series_test.go; the package comment of internal/series
// documents how to add a kernel without breaking either property.
//
// # The evaluator hot path: delta evaluation
//
// The heuristic solver evaluates Chains × MaxIterations candidate sitings
// per solve, and every sweep experiment solves once per green-fraction
// point per storage mode per source mix, so the siting evaluator is the
// system's hot path.  It is built around internal/core's Evaluator: a
// reusable object bound to one (catalog, spec) pair that owns every scratch
// buffer the pipeline needs, plus per-catalog caches of the brown-cost rank
// key, the unit green production costs, the solar/wind technology split and
// the weighted PUE sum of every site.
//
// The evaluation pipeline is split so that most of its work is memoizable
// across the single-site moves an annealing chain makes:
//
//   - The shared schedule merge assigns the network load per epoch (load
//     follows the renewables first, then the cheapest brown power), driven
//     by per-site reference plants that depend only on each site's own
//     static profile and capacity.  It is cheap and always re-runs.
//   - The per-site stage — migration overhead, facility demand, plant
//     sizing by per-site bisection, battery sizing, storage balance and the
//     monthly cost model — is a pure function of (site, capacity, schedule
//     row, spec) and dominates the cost.  Its outputs are cached per site.
//   - A network-level top-up stage handles sitings whose green target is
//     unreachable from individual sites alone by bisecting a common plant
//     scale factor; it runs only in that case, on top of the cached
//     per-site sizings.
//
// Invalidation protocol: annealing moves carry structured metadata
// (core.Move{Kind, Site, OldCap, NewCap}) from the neighbourhood function
// through internal/anneal's move-aware hooks into the evaluator.  The moved
// site is always re-run; every other site is revalidated by content — its
// cached result is reused iff its capacity matches and its schedule-row
// digest (series.Digest, computed once per merge) matches the cached key,
// an O(1) check per clean site in place of the old O(epochs) full-row
// compare.  Content validation makes the cache self-correcting: a missing
// or wrong hint costs a recomputation, never correctness, and a delta
// evaluation is bit-identical to evaluating the same candidates from
// scratch up to a Digest collision on two distinct rows (≈2⁻⁶⁴ per
// comparison, never observed; TestDeltaEvaluationMatchesFull pins the
// bit-identity, plus the digest/row coherence invariants, over randomized
// move sequences).
//
// Reuse contract: scratch grows to the largest candidate set seen, cache
// entries are allocated once per distinct site, and a steady-state
// EvaluateCost/EvaluateCostMove call performs zero heap allocations
// (BenchmarkEvaluateSteadyState and the core tests enforce exactly
// 0 allocs/op); the full Evaluate method allocates only the returned
// Solution.  An Evaluator is not safe for concurrent use — each annealing
// chain owns one (anneal.Config.NewContext), which also keeps the per-site
// cache warm along the chain's trajectory.  Chains are fully independent
// with deterministic per-chain RNG seeds and a deterministic best-of merge,
// so a fixed seed yields a bit-identical Solution whether the chains run
// sequentially or in parallel.
//
// Location filtering shards the catalog across a GOMAXPROCS worker pool
// (per-worker evaluators, slot-indexed scores, deterministic merge), and
// sweep experiments warm-start each green-fraction point's search with the
// previous point's siting (experiments.Config.DisableWarmStart turns that
// off).
//
// # The emulation hot loop: metadata-plane GDFS and the reusable Runner
//
// The follow-the-renewables emulation (internal/emul) is GreenNebula's hot
// path: every emulated hour forecasts green power, partitions the load,
// migrates VMs over the emulated WAN and dirties each VM's disk blocks into
// GDFS.  Two designs keep it at production scale:
//
//   - GDFS carries two interchangeable data planes.  The payload plane
//     (gdfs.Worker) stores real block bytes — rpc/TCP serving runs on it,
//     its buffers are pooled and created-but-unwritten blocks stay lazy
//     zero pages.  The metadata plane (gdfs.MetaWorker) stores a replica as
//     three scalars {version, length, digest}: writes bump versions,
//     replication copies metadata, byte counters (BytesStored,
//     pending-migration bytes, staleness, re-replication plans) are
//     arithmetic.  The contract is that every externally visible counter is
//     byte-for-byte identical across planes — same digest if and only if
//     same content, same replica sets, same re-replication task lists —
//     pinned by a randomized differential test that drives both planes
//     through identical op schedules (internal/gdfs/meta_test.go).  The one
//     deliberate gap: MetaWorker.ReadBlock returns gdfs.ErrMetadataOnly, so
//     a cluster must be plane-homogeneous.  The emulation runs the metadata
//     plane by default (emul.Config.DataPlane), which removes gigabytes of
//     live block slices from a large fleet's working set.
//   - emul.Runner owns every per-run and per-hour buffer: green/PUE traces
//     and forecast windows live in series.Blocks, predictors fill
//     caller-provided slices (predict.Predictor.PredictInto), fleets are
//     maintained pre-sorted across hours so the scheduler skips re-sorting,
//     and the scheduler's partition LP + basis persist across hours
//     (internal/sched warm starts).  Migration execution is sharded by
//     destination datacenter with a merge in destination order; a
//     datacenter is never donor and receiver in the same round, so any
//     emul.Config.Parallelism level is bit-identical to sequential
//     execution (pinned under -race).  A Runner's second Run is
//     bit-identical to its first; the scratch-ownership rules are in
//     internal/emul's package comment.
//
// BenchmarkEmulDay runs one emulated day on a reused Runner (its bytes/op
// is a contract, gated by benchjson alongside ns/op);  BenchmarkEmulScale
// holds thousands of VMs per emulated hour.
//
// # Serving: the continuous-planning daemon
//
// internal/plan and cmd/plannerd turn the batch emulation into a service:
// plannerd keeps a live follow-the-renewables plan for one emulated
// network, ingests streamed hourly updates and serves HTTP/JSON on
// localhost — GET /plan (the current plan and cumulative statistics),
// POST /tick (feed the next hour, optionally with per-site green-energy
// scale adjustments standing in for revised weather), POST /whatif (price
// a hypothetical siting interactively).  Each tick is an incremental
// re-plan, not a fresh solve: the scheduler's partition LP keeps its
// structure cached across ticks, the streamed update rewrites only
// RHS/bounds/cost data, and the solve warm-starts from the carried
// lp.Basis — a healthy tick stream runs at zero cold fallbacks for the
// daemon's entire lifetime (Stats.ColdFallbacks counts abandoned warm
// starts, and the first solve of a fresh daemon carries no basis, so the
// CI smoke asserts the counter is exactly 0 across all ticks).  At the
// 3-datacenter/9-VM validation scale a steady-state tick is sub-millisecond
// (BenchmarkPlannerTick gates it, with allocs, in BENCH_SMOKE).
//
// Concurrency model: one mutex serializes the tick path (runner stepping +
// snapshot writes); the serving state is an immutable-once-published
// PlanView swapped behind an RWMutex, so GET /plan never waits on an
// in-flight solve.  What-if queries run on per-session core.Evaluators —
// distinct sessions price candidates in parallel, repeated queries within a
// session reuse its memoized per-site stages, and an LRU cap bounds the
// session table.  Shutdown is cooperative via context.Context: SIGTERM
// stops new work, in-flight requests finish.
//
// Durability: after every tick the daemon atomically rewrites a versioned,
// FNV-checksummed snapshot — the trace identity, the per-tick migration
// schedule log, the streamed adjustments in effect, the current warm basis
// (lp.Basis.MarshalBinary, itself a checksummed binary format) and the
// serving view.  A restarted daemon replays the schedule log against a
// fresh trace start (pure fleet/GDFS bookkeeping, no LP work — the same
// event-sourcing trick the emulation determinism tests use), installs the
// decoded basis and resumes: the continued tick stream is bit-identical to
// a daemon that was never stopped and its first solve starts warm.  A
// missing, truncated, corrupted or foreign-trace snapshot is rejected as a
// unit and the daemon starts cold from the trace beginning — never
// half-restored.  `make test-daemon` (CI's daemon-smoke job) pins all of
// this through the real binary: HTTP ticks bit-identical to a batch
// emul.Runner, SIGKILL mid-stream, warm resume from the snapshot.
//
// # Failure semantics: budgets, recovery, degradation
//
// No exported API panics on valid inputs; everything that can go wrong is
// an error, a recovery, or a tagged degradation, layer by layer:
//
//   - internal/lp recovers before it reports.  A solve climbs a structured
//     ladder instead of failing on the first numerical incident: a run of
//     degenerate (zero-step) pivots switches pricing to Bland's rule after a
//     fresh refactorization; a singular basis factorization is repaired in
//     place by ejecting the offending basic column for the slack of an
//     unpivotable row and retrying (up to a small budget); non-finite
//     FTRAN/BTRAN results are caught by NaN/Inf guards and answered with a
//     refactorization rather than a poisoned pivot — including on the
//     optimality exit, so NaN reduced costs can never fake an optimum.  A
//     warm start whose ladder runs out falls back to a cold two-phase solve;
//     only when that fails too does the caller see ErrNumeric.
//     Solution.Stats counts every rung taken (pivots, bound flips,
//     refactorizations, Bland switches, repairs, NaN guards, cold
//     fallbacks).  lp.SolveOptions adds budgets: Deadline and Ctx stop the
//     solve between pivots with ErrDeadline/ErrCancelled (wrapping the
//     context package's errors), and budget stops are final — they never
//     trigger a cold retry.
//   - internal/milp treats budgets as "return your best", not "fail".  When
//     MaxNodes, the Deadline or the Ctx runs out after an incumbent exists,
//     Solve returns it with a nil error, Proven false and the residual
//     bound Gap; the budget errors (ErrNodeLimit, ErrDeadline,
//     ErrCancelled) only surface when the budget ran out before any
//     feasible solution was found.
//   - internal/sched degrades instead of erroring: if the partition LP
//     fails (numerically or past Options.LPTimeout), Partition returns a
//     feasible static greedy split — current loads clipped to capacity,
//     spare load to the greenest headroom — tagged Plan.Degraded with the
//     reason, so an hourly control loop always has a plan to execute.  The
//     corrupt warm basis is dropped and the next healthy round returns to
//     LP-optimal plans.
//   - internal/anneal, core.Solve, core.SolveExact and the experiment suite
//     accept a context.Context and cancel cooperatively.  Chains poll the
//     context before consuming any randomness, so an uncancelled run is
//     bit-identical to one without a context; a cancelled run stops
//     promptly and hands back the partial best alongside the context error.
//
// Every rung of this ladder is exercised deterministically: internal/lp
// exports named fault points (lp.ArmFault/lp.DisarmFaults — force a
// singular LU, corrupt an eta vector, poison an FTRAN column, expire the
// deadline at an exact pivot, trip the stall detector) that the resilience
// suites in lp, sched and milp use to inject real mid-solve failures
// (`make test-faults` runs them under the race detector).
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; `make bench` snapshots them into a BENCH_<date>.json
// so the performance trajectory is tracked per PR.  BenchmarkCalibration is
// a fixed-work machine-speed probe recorded in every snapshot: benchjson
// -calibrate divides cross-snapshot ns/op deltas by the probe's ratio, so
// diffs taken on a different machine compare code, not hardware.
// BenchmarkLPPricing A/Bs the simplex pricing rules (devex, Dantzig,
// Bland) on the scheduler-shaped partition LP and reports pivots/op next
// to ns/op.  `make profile` writes CPU and heap profiles of
// BenchmarkSchedulerComputeTime — the end-to-end optimization loop — into
// the gitignored profile/ directory for `go tool pprof`.  See DESIGN.md
// for the experiment index and EXPERIMENTS.md for measured-versus-paper
// results.
package greencloud
