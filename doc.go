// Package greencloud reproduces "Building Green Cloud Services at Low Cost"
// (Berral, Goiri, Nguyen, Gavaldà, Torres, Bianchini — ICDCS 2014) as a Go
// library.
//
// The repository has two public entry points:
//
//   - package placement sites and provisions a network of datacenters with
//     on-site solar/wind plants and energy storage so that a desired
//     fraction of the service's energy is green, at minimum monthly cost
//     (the paper's framework, optimization problem and heuristic solver);
//   - package renewables runs GreenNebula, the follow-the-renewables VM
//     placement and migration system (hourly scheduler, live migration over
//     an emulated WAN, GDFS distributed file system).
//
// Everything the paper's evaluation depends on — synthetic typical
// meteorological years, PV and wind-turbine production models, the PUE
// model, the cost model with financing and amortization, an LP/MILP solver,
// simulated annealing, the within-datacenter VM manager and the emulated
// wide-area network — is implemented from scratch under internal/.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured-versus-paper results.
package greencloud
