# CI entry points.  `make ci` is what a pipeline should run: static vetting,
# a full build, the test suite under the race detector (the annealing chains
# and the sweep engine are concurrent), and a one-shot benchmark smoke that
# fails loudly if the zero-allocation evaluator or an experiment regresses.

GO ?= go

# pipefail so the bench target fails when `go test -bench` itself fails:
# without it the pipeline's status is benchjson's, which would otherwise
# happily snapshot whatever partial output preceded a crash.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: ci vet build test bench-smoke bench

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -timeout 2400s ./...

# One-shot smoke of the contract-carrying benchmarks: the cached evaluator
# (EvaluateSteadyState) and the delta-move path (EvaluateDeltaMove) print
# allocs/op with their 0 allocs/op guarantee enforced by the accompanying
# tests, and LPResolve exercises the warm-started revised-simplex path
# (SetRHS + SolveFrom) end to end; running them here catches a
# benchmark-only breakage (setup drift, catalog changes, a basis that stops
# translating) in `make ci` instead of the full sweep.
bench-smoke:
	$(GO) test -bench='^(BenchmarkEvaluateSteadyState|BenchmarkEvaluateDeltaMove|BenchmarkLPResolve)$$' -benchtime=1x -run '^$$' .

# Full benchmark sweep (regenerates every paper figure; slow).  The output
# is snapshotted into BENCH_<date>.json so the performance trajectory is
# tracked per PR; commit the snapshot alongside perf-relevant changes.
# benchjson refuses to overwrite a same-day snapshot (it writes a -2/-3/…
# suffixed sibling instead) and diffs against the latest committed snapshot,
# failing the target when any benchmark regresses by more than 10% ns/op.
bench:
	$(GO) test -bench=. -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json -baseline latest
