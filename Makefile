# CI entry points.  `make ci` is what a pipeline should run: static vetting,
# a full build, the test suite under the race detector (the annealing chains
# and the sweep engine are concurrent), and a one-shot benchmark smoke that
# fails loudly if the zero-allocation evaluator or an experiment regresses.

GO ?= go

# pipefail so the bench target fails when `go test -bench` itself fails:
# without it the pipeline's status is benchjson's, which would otherwise
# happily snapshot whatever partial output preceded a crash.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: ci vet lint fmt-check build test test-daemon test-mps test-faults cover bench-smoke bench-check bench profile

ci: vet build test test-mps test-faults bench-smoke

vet:
	$(GO) vet ./...

# Static analysis beyond go vet.  The hosted CI lint job installs the pinned
# staticcheck and runs this target; locally the target degrades to a notice
# when the tool is absent rather than failing every offline checkout.
# -checks=SA keeps the gate on correctness analyses (the SA series) so a
# style-rule bump in a new staticcheck release can't redden CI.
STATICCHECK ?= staticcheck

lint:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) -checks=SA ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI runs it)"; \
		echo "lint: to run locally: go install honnef.co/go/tools/cmd/staticcheck@2025.1.1"; \
	fi

# The gofmt gate the hosted CI workflow runs as its own job (so formatting
# failures are reported separately from build/test failures), reproducible
# locally before pushing.  Deliberately not part of `make ci`: the workflow
# runs `make ci`, `make fmt-check` and `make cover` as three separate gates.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

# The unit/library suite.  The serving-layer packages (the plannerd daemon
# and its exec-driven smoke tests, which build binaries, bind sockets and
# kill processes) run under their own budget in `make test-daemon` — CI's
# daemon-smoke job — so an integration hang can never eat the library
# suite's 2400s budget, and vice versa.
DAEMON_PKGS := greencloud/internal/plan greencloud/cmd/plannerd

test:
	$(GO) test -race -timeout 2400s $$($(GO) list ./... | grep -v -x -e 'greencloud/internal/plan' -e 'greencloud/cmd/plannerd')

# The continuous-planning daemon suites: the internal/plan package tests
# (batch equivalence, snapshot resume, concurrent what-ifs under -race) and
# the cmd/plannerd process-level smoke (build the real binary, drive it over
# HTTP, SIGKILL it, restart from snapshot).  Daemon stderr lands in
# testlogs/, which the CI daemon-smoke job uploads when this target fails.
test-daemon:
	$(GO) test -race -timeout 600s $(DAEMON_PKGS)

# The vendored-MPS interchange gate: cmd/lpsolve must reproduce the
# committed reference objective of every instance under testdata/mps/ (see
# testdata/mps/objectives.tsv), under both pricing rules, with presolve off,
# and across a WriteMPS round trip.
test-mps:
	$(GO) test -run TestVendoredMPS -count=1 ./cmd/lpsolve/

# The fault-injection and resilience suites, run explicitly and under -race:
# every rung of the lp recovery ladder (singular-basis repair, cold retry,
# NaN guards, the Bland stall switch, deadline/cancellation), scheduler
# degradation, milp budget stops and anneal/core/experiments cancellation.
# `make test` already covers them via ./...; this focused gate makes a
# resilience regression loud and names the suites in the CI log.
FAULT_TESTS := Fault|Degrad|Budget|Cancel|Deadline|Stall|NaN|Repair|Corrupt|Stats|MaxIters|Resilience
FAULT_PKGS := ./internal/lp/ ./internal/sched/ ./internal/milp/ ./internal/anneal/ ./internal/core/ ./internal/experiments/

test-faults:
	$(GO) test -race -run '$(FAULT_TESTS)' $(FAULT_PKGS)

# Coverage run: go test prints the per-package totals, the merged profile
# lands in coverage.out (uploaded as a build artifact by the CI workflow),
# and the final line is the whole-repo total.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# One-shot smoke of the contract-carrying benchmarks: the cached evaluator
# (EvaluateSteadyState) and the delta-move path (EvaluateDeltaMove) print
# allocs/op with their 0 allocs/op guarantee enforced by the accompanying
# tests, LPResolve exercises the warm-started revised-simplex path
# (SetRHS + SolveFrom) end to end, and LPBounded exercises the
# implicit-bound path (nonbasic-at-bound statuses, bound flips) on a
# bound-heavy cold solve, and EmulDay runs one full emulation day on a
# reused Runner (metadata-plane GDFS + scratch reuse — the path that took
# Fig. 15 from gigabytes of allocation to megabytes); running them here
# catches a benchmark-only breakage (setup drift, catalog changes, a basis
# that stops translating) in `make ci` instead of the full sweep.
# BenchmarkCalibration is the machine-speed probe benchjson -calibrate
# normalizes by, BenchmarkLPPricing keeps the pricing-rule A/B (and its
# pivots/op metric) compiling and running, and BenchmarkLPPresolve keeps the
# presolve on/off A/B (with its rows_removed/cols_removed metrics) alive —
# each sub-benchmark at -benchtime=1x costs a few milliseconds.
# BenchmarkPlannerTick measures the continuous planner's steady-state warm
# tick (streamed ingest + RHS rewrite + warm re-solve + publish) — the
# latency a plannerd client sees on POST /tick — and fails if a measured
# tick falls back cold.
BENCH_SMOKE := ^(BenchmarkCalibration|BenchmarkEvaluateSteadyState|BenchmarkEvaluateDeltaMove|BenchmarkLPResolve|BenchmarkLPBounded|BenchmarkLPPricing|BenchmarkLPPresolve|BenchmarkEmulDay|BenchmarkPlannerTick)$$

bench-smoke:
	$(GO) test -bench='$(BENCH_SMOKE)' -benchtime=1x -run '^$$' .

# The smoke benchmarks diffed against the latest committed snapshot without
# writing a new one (benchjson -check-only), so a CI runner can surface the
# deltas without ever polluting the BENCH_*.json trajectory.  One-shot
# measurements are reported but never gated (see cmd/benchjson), so this
# target fails only on parse/run failures, not machine noise.  -calibrate
# normalizes the ns/op deltas by the BenchmarkCalibration ratio between the
# two snapshots, so a CI runner on different hardware diffs speedups, not
# machines.
bench-check:
	$(GO) test -bench='$(BENCH_SMOKE)' -benchtime=1x -run '^$$' . | $(GO) run ./cmd/benchjson -check-only -calibrate -baseline latest

# Full benchmark sweep (regenerates every paper figure; slow).  The output
# is snapshotted into BENCH_<date>.json so the performance trajectory is
# tracked per PR; commit the snapshot alongside perf-relevant changes.
# benchjson refuses to overwrite a same-day snapshot (it writes a -2/-3/…
# suffixed sibling instead) and diffs against the latest committed snapshot,
# failing the target when any benchmark regresses by more than 10% ns/op.
bench:
	$(GO) test -bench=. -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json -calibrate -baseline latest

# CPU and heap profiles of one benchmark, written under profile/ (gitignored)
# for `go tool pprof profile/cpu.out`.  PROFILE_BENCH picks the benchmark —
# the default is the scheduler's end-to-end compute time (the optimization
# loop the paper's Fig. 14 measures; the entry point the devex/partial-pricing
# work was profiled with), but any benchmark name works:
#   make profile PROFILE_BENCH=LPPresolve
PROFILE_BENCH ?= SchedulerComputeTime

profile:
	mkdir -p profile
	$(GO) test -bench='^Benchmark$(PROFILE_BENCH)$$' -benchtime=5x -run '^$$' \
		-cpuprofile profile/cpu.out -memprofile profile/mem.out -o profile/bench.test .
	@echo "profiles in profile/: go tool pprof profile/bench.test profile/cpu.out"
