# CI entry points.  `make ci` is what a pipeline should run: static vetting,
# a full build, the test suite under the race detector (the annealing chains
# and the sweep engine are concurrent), and a one-shot benchmark smoke that
# fails loudly if the zero-allocation evaluator or an experiment regresses.

GO ?= go

# pipefail so the bench target fails when `go test -bench` itself fails:
# without it the pipeline's status is benchjson's, which would otherwise
# happily snapshot whatever partial output preceded a crash.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: ci vet fmt-check build test cover bench-smoke bench-check bench

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

# The gofmt gate the hosted CI workflow runs as its own job (so formatting
# failures are reported separately from build/test failures), reproducible
# locally before pushing.  Deliberately not part of `make ci`: the workflow
# runs `make ci`, `make fmt-check` and `make cover` as three separate gates.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race -timeout 2400s ./...

# Coverage run: go test prints the per-package totals, the merged profile
# lands in coverage.out (uploaded as a build artifact by the CI workflow),
# and the final line is the whole-repo total.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# One-shot smoke of the contract-carrying benchmarks: the cached evaluator
# (EvaluateSteadyState) and the delta-move path (EvaluateDeltaMove) print
# allocs/op with their 0 allocs/op guarantee enforced by the accompanying
# tests, LPResolve exercises the warm-started revised-simplex path
# (SetRHS + SolveFrom) end to end, and LPBounded exercises the
# implicit-bound path (nonbasic-at-bound statuses, bound flips) on a
# bound-heavy cold solve; running them here catches a benchmark-only
# breakage (setup drift, catalog changes, a basis that stops translating)
# in `make ci` instead of the full sweep.
BENCH_SMOKE := ^(BenchmarkEvaluateSteadyState|BenchmarkEvaluateDeltaMove|BenchmarkLPResolve|BenchmarkLPBounded)$$

bench-smoke:
	$(GO) test -bench='$(BENCH_SMOKE)' -benchtime=1x -run '^$$' .

# The smoke benchmarks diffed against the latest committed snapshot without
# writing a new one (benchjson -check-only), so a CI runner can surface the
# deltas without ever polluting the BENCH_*.json trajectory.  One-shot
# measurements are reported but never gated (see cmd/benchjson), so this
# target fails only on parse/run failures, not machine noise.
bench-check:
	$(GO) test -bench='$(BENCH_SMOKE)' -benchtime=1x -run '^$$' . | $(GO) run ./cmd/benchjson -check-only -baseline latest

# Full benchmark sweep (regenerates every paper figure; slow).  The output
# is snapshotted into BENCH_<date>.json so the performance trajectory is
# tracked per PR; commit the snapshot alongside perf-relevant changes.
# benchjson refuses to overwrite a same-day snapshot (it writes a -2/-3/…
# suffixed sibling instead) and diffs against the latest committed snapshot,
# failing the target when any benchmark regresses by more than 10% ns/op.
bench:
	$(GO) test -bench=. -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json -baseline latest
