# CI entry points.  `make ci` is what a pipeline should run: static vetting,
# a full build, the test suite under the race detector (the annealing chains
# and the sweep engine are concurrent), and a one-shot benchmark smoke that
# fails loudly if the zero-allocation evaluator or an experiment regresses.

GO ?= go

.PHONY: ci vet build test bench-smoke bench

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -timeout 2400s ./...

bench-smoke:
	$(GO) test -bench=BenchmarkEvaluateSteadyState -benchtime=1x -run '^$$' .

# Full benchmark sweep (regenerates every paper figure; slow).  The output
# is snapshotted into BENCH_<date>.json so the performance trajectory is
# tracked per PR; commit the snapshot alongside perf-relevant changes.
bench:
	$(GO) test -bench=. -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json
