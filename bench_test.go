package greencloud_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"greencloud/internal/core"
	"greencloud/internal/emul"
	"greencloud/internal/experiments"
	"greencloud/internal/location"
	"greencloud/internal/lp"
	"greencloud/internal/plan"
	"greencloud/internal/series"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

// suite is shared across benchmarks: the synthetic catalog and the cached
// sweeps are expensive to build, and sharing them mirrors how the paper's
// evaluation reuses one dataset for every figure.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(experiments.Config{Budget: experiments.Quick, Seed: 1})
	})
	if suiteErr != nil {
		b.Fatalf("build experiment suite: %v", suiteErr)
	}
	return suite
}

// calibrationSink keeps the calibration loop's result live so the compiler
// cannot elide the work.
var calibrationSink uint64

// BenchmarkCalibration is a machine-speed probe: every op runs the same
// fixed amount of pure arithmetic — an integer xorshift feeding a bounded
// floating-point accumulator — with no allocations, no memory traffic
// beyond registers, and no solver code.  Its ns/op therefore tracks only
// how fast the current machine executes compute, which is exactly the
// normalization benchjson's -calibrate flag needs to compare snapshots
// taken on heterogeneous runners: a workload benchmark that got 20% slower
// while Calibration also got 20% slower is a slower machine, not a slower
// program.
func BenchmarkCalibration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := uint64(0x9E3779B97F4A7C15)
		f := 0.0
		for n := 0; n < 1<<16; n++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			f = f*0.5 + float64(x>>40)
		}
		calibrationSink = x + uint64(f)
	}
}

// runExperiment benchmarks one table/figure generator and reports its rows
// as a sanity check (an empty table means the experiment silently produced
// nothing).
func runExperiment(b *testing.B, id string) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := s.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: experiment produced no rows", id)
		}
	}
}

// BenchmarkEvaluateSteadyState measures one cached-evaluator cost evaluation
// — the annealing inner loop.  The evaluator owns all scratch state, so the
// benchmark must report 0 allocs/op; a regression here puts garbage-collector
// pressure back into Chains × MaxIterations × sweep-points of work.
func BenchmarkEvaluateSteadyState(b *testing.B) {
	cat, err := location.Generate(location.Options{Count: 60, Seed: 1, RepresentativeDays: 2})
	if err != nil {
		b.Fatalf("generate catalog: %v", err)
	}
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 10_000
	ev, err := core.NewEvaluator(cat, spec)
	if err != nil {
		b.Fatalf("build evaluator: %v", err)
	}
	candidates := []core.Candidate{{SiteID: 2}, {SiteID: 5}, {SiteID: 9}}
	if _, err := ev.EvaluateCost(candidates); err != nil {
		b.Fatalf("warm-up evaluation: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateCost(candidates); err != nil {
			b.Fatalf("evaluate: %v", err)
		}
	}
}

// BenchmarkEvaluateDeltaMove measures the annealing inner loop as a chain
// actually drives it: alternating single-site moves against a warm
// evaluator, so each evaluation re-runs only the dirty site's pipeline plus
// the shared schedule merge.  Must stay at 0 allocs/op.
func BenchmarkEvaluateDeltaMove(b *testing.B) {
	cat, err := location.Generate(location.Options{Count: 60, Seed: 1, RepresentativeDays: 2})
	if err != nil {
		b.Fatalf("generate catalog: %v", err)
	}
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 10_000
	ev, err := core.NewEvaluator(cat, spec)
	if err != nil {
		b.Fatalf("build evaluator: %v", err)
	}
	base := []core.Candidate{{SiteID: 2, CapacityKW: 5_000}, {SiteID: 5, CapacityKW: 5_000}, {SiteID: 9, CapacityKW: 5_000}}
	grown := []core.Candidate{{SiteID: 2, CapacityKW: 6_250}, {SiteID: 5, CapacityKW: 5_000}, {SiteID: 9, CapacityKW: 5_000}}
	growMv := core.Move{Kind: core.MoveGrow, Site: 2, OldCap: 5_000, NewCap: 6_250}
	shrinkMv := core.Move{Kind: core.MoveShrink, Site: 2, OldCap: 6_250, NewCap: 5_000}
	for _, cands := range [][]core.Candidate{base, grown} {
		if _, err := ev.EvaluateCost(cands); err != nil {
			b.Fatalf("warm-up evaluation: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateCostMove(grown, growMv); err != nil {
			b.Fatalf("evaluate: %v", err)
		}
		if _, err := ev.EvaluateCostMove(base, shrinkMv); err != nil {
			b.Fatalf("evaluate: %v", err)
		}
	}
}

// BenchmarkSolveSmallNetwork measures a full heuristic solve (filtering
// skipped, parallel annealing chains over the cached evaluator pool).
func BenchmarkSolveSmallNetwork(b *testing.B) {
	cat, err := location.Generate(location.Options{Count: 60, Seed: 1, RepresentativeDays: 2})
	if err != nil {
		b.Fatalf("generate catalog: %v", err)
	}
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 10_000
	candidates, err := core.FilterSites(cat, spec, 15)
	if err != nil {
		b.Fatalf("filter sites: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.SolveOptions{Candidates: candidates, Chains: 4, MaxIterations: 40, Seed: 1}
		if _, err := core.Solve(cat, spec, opts); err != nil {
			b.Fatalf("solve: %v", err)
		}
	}
}

// BenchmarkFig3CapacityFactors regenerates the capacity-factor CDF (Fig. 3).
func BenchmarkFig3CapacityFactors(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4PUECurve regenerates the PUE-vs-temperature curve (Fig. 4).
func BenchmarkFig4PUECurve(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5PUEvsCF regenerates the PUE-vs-capacity-factor relation (Fig. 5).
func BenchmarkFig5PUEvsCF(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable2GoodLocations regenerates Table II (good brown/solar/wind sites).
func BenchmarkTable2GoodLocations(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig6SingleDCCostCDF regenerates the per-location cost CDF (Fig. 6).
func BenchmarkFig6SingleDCCostCDF(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7CaseStudy regenerates the 50 MW / 50 % green cost breakdown (Fig. 7).
func BenchmarkFig7CaseStudy(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8NetMetering regenerates cost vs. green % with net metering (Fig. 8).
func BenchmarkFig8NetMetering(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Batteries regenerates cost vs. green % with batteries (Fig. 9).
func BenchmarkFig9Batteries(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10NoStorage regenerates cost vs. green % without storage (Fig. 10).
func BenchmarkFig10NoStorage(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11CapacityNetMeter regenerates capacity vs. green % with net metering (Fig. 11).
func BenchmarkFig11CapacityNetMeter(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12CapacityNoStorage regenerates capacity vs. green % without storage (Fig. 12).
func BenchmarkFig12CapacityNoStorage(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13MigrationImpact regenerates cost vs. migration overhead (Fig. 13).
func BenchmarkFig13MigrationImpact(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable3NoStorageNetwork regenerates the 100 % green / no-storage network (Table III).
func BenchmarkTable3NoStorageNetwork(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig15FollowRenewables regenerates the follow-the-renewables day trace (Fig. 15).
func BenchmarkFig15FollowRenewables(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkSchedulerComputeTime measures the GreenNebula scheduler's
// migration-schedule computation time (Section V-C).
func BenchmarkSchedulerComputeTime(b *testing.B) { runExperiment(b, "sched-timing") }

// BenchmarkHeuristicVsExactSmall compares the heuristic solver against the
// exact MILP on a small instance (Section III-D).
func BenchmarkHeuristicVsExactSmall(b *testing.B) { runExperiment(b, "heuristic-vs-exact") }

// emulBenchConfig builds an nDC-datacenter follow-the-renewables emulation
// over the synthetic catalog's best solar sites (spread across time zones so
// the sun is always up somewhere), with plants heavily overbuilt relative to
// the nVMs-VM fleet so load actually chases the sun.  It mirrors
// internal/emul's test configuration, parameterized for scale.
func emulBenchConfig(b *testing.B, nDC, nVMs, hours int) emul.Config {
	b.Helper()
	cat, err := location.Generate(location.Options{Count: 60, Seed: 21, RepresentativeDays: 1})
	if err != nil {
		b.Fatalf("generate catalog: %v", err)
	}
	fleet := vm.NewHPCFleet("hpc", nVMs)
	fleetKW := fleet.TotalPowerW() / 1000

	solar := cat.TopBySolarCF(16)
	picked := []*location.Site{solar[0]}
	for _, cand := range solar[1:] {
		distinct := true
		for _, p := range picked {
			d := cand.UTCOffsetHours - p.UTCOffsetHours
			if d < 0 {
				d = -d
			}
			if d > 12 {
				d = 24 - d
			}
			if d < 5 {
				distinct = false
				break
			}
		}
		if distinct {
			picked = append(picked, cand)
		}
		if len(picked) == nDC {
			break
		}
	}
	for len(picked) < nDC {
		picked = append(picked, solar[len(picked)])
	}

	dcs := make([]emul.DatacenterConfig, 0, nDC)
	for _, site := range picked {
		dcs = append(dcs, emul.DatacenterConfig{
			Name:       site.Name,
			Site:       site,
			CapacityKW: fleetKW,
			SolarKW:    fleetKW * 8 / site.SolarCapacityFactor * 0.25,
			WindKW:     0.2,
		})
	}
	return emul.Config{
		Datacenters:  dcs,
		VMs:          fleet,
		StartHour:    24 * 172,
		Hours:        hours,
		HorizonHours: 12,
		Link:         wan.Link{BandwidthMbps: 1000, LatencyMs: 90},
	}
}

// BenchmarkEmulDay measures one 24-hour GreenNebula emulation day at the
// paper's 9-VM validation scale on a reused Runner — the metadata-plane GDFS
// and the Runner's scratch reuse are what keep its allocations flat, so
// bytes/op here is a contract, not a curiosity.
func BenchmarkEmulDay(b *testing.B) {
	r, err := emul.NewRunner(emulBenchConfig(b, 3, 9, 24))
	if err != nil {
		b.Fatalf("build runner: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run()
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		if res.Migrations == 0 {
			b.Fatal("emulation produced no migrations")
		}
	}
}

// BenchmarkPlannerTick measures the continuous planner's steady-state tick:
// ingest one streamed hour, rewrite the RHS/bounds of the structure-cached
// partition LP, re-solve warm from the carried basis, execute the migration
// schedule and publish the new serving view.  This is the latency a plannerd
// client sees on POST /tick once the daemon is warm; the benchmark fails if
// any measured tick falls back to a cold solve.
func BenchmarkPlannerTick(b *testing.B) {
	d, err := plan.New(plan.Config{Trace: plan.TraceSpec{}})
	if err != nil {
		b.Fatalf("build daemon: %v", err)
	}
	// Warm up past the first (cold-by-construction) solve.
	for i := 0; i < 2; i++ {
		if _, err := d.Tick(plan.TickRequest{}); err != nil {
			b.Fatalf("warmup tick: %v", err)
		}
	}
	base := d.PlanView().CumLPStats.ColdFallbacks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view, err := d.Tick(plan.TickRequest{})
		if err != nil {
			b.Fatalf("tick: %v", err)
		}
		if view.CumLPStats.ColdFallbacks != base {
			b.Fatal("steady-state tick fell back cold")
		}
	}
}

// BenchmarkEmulScale measures the emulation at production scale — 2000 VMs
// across 4 datacenters for 12 hours — which the payload-plane GDFS could not
// touch (2000 VMs × 64 MiB of blocks would be 128 GiB of live byte slices);
// on the metadata plane a replica is three scalars and the whole run
// completes in seconds.
func BenchmarkEmulScale(b *testing.B) {
	r, err := emul.NewRunner(emulBenchConfig(b, 4, 2000, 12))
	if err != nil {
		b.Fatalf("build runner: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run()
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		if res.Migrations == 0 {
			b.Fatal("emulation produced no migrations")
		}
	}
}

// lpBenchDCs × lpBenchHorizon is the shape of the benchmark partition LP —
// the scheduler's production shape (3 datacenters × 48 hours).
const (
	lpBenchDCs     = 3
	lpBenchHorizon = 48
)

// partitionLP builds a scheduler-shaped partition LP (nDC datacenters ×
// horizon hours: load/migration/brown variables, placement equalities,
// migration-overhead, brown-deficit and capacity rows) with a phase
// parameter that shifts the green forecasts, so successive phases model
// successive scheduling rounds.  The placement rows are, by construction,
// the first horizon constraints (indices [0, horizon)) — the rhs the
// re-solve benchmark rewrites.
func partitionLP(b *testing.B, nDC, horizon int, phase float64) *lp.Problem {
	b.Helper()
	const totalLoad = 900.0
	prob := lp.NewProblem(lp.Minimize)
	load := make([][]lp.Var, nDC)
	mig := make([][]lp.Var, nDC)
	brown := make([][]lp.Var, nDC)
	var err error
	for d := 0; d < nDC; d++ {
		load[d] = make([]lp.Var, horizon)
		mig[d] = make([]lp.Var, horizon)
		brown[d] = make([]lp.Var, horizon)
		price := 0.08 + 0.01*float64(d)
		for h := 0; h < horizon; h++ {
			if load[d][h], err = prob.AddVariable("load", 0, lp.Infinity, 0); err != nil {
				b.Fatal(err)
			}
			if mig[d][h], err = prob.AddVariable("mig", 0, lp.Infinity, price*0.1); err != nil {
				b.Fatal(err)
			}
			if brown[d][h], err = prob.AddVariable("brown", 0, lp.Infinity, price); err != nil {
				b.Fatal(err)
			}
		}
	}
	for h := 0; h < horizon; h++ {
		terms := make([]lp.Term, nDC)
		for d := 0; d < nDC; d++ {
			terms[d] = lp.Term{Var: load[d][h], Coeff: 1}
		}
		if err := prob.AddConstraint("place", lp.EQ, totalLoad, terms...); err != nil {
			b.Fatal(err)
		}
	}
	const f = 1.0
	for d := 0; d < nDC; d++ {
		for h := 0; h < horizon; h++ {
			green := 600 * math.Max(0, math.Sin(float64(h+8*d)/24*2*math.Pi+phase))
			terms := []lp.Term{{Var: mig[d][h], Coeff: 1}, {Var: load[d][h], Coeff: f}}
			rhs := 0.0
			if h == 0 {
				rhs = f * totalLoad / float64(nDC)
			} else {
				terms = append(terms, lp.Term{Var: load[d][h-1], Coeff: -f})
			}
			if err := prob.AddConstraint("migOut", lp.GE, rhs, terms...); err != nil {
				b.Fatal(err)
			}
			if err := prob.AddConstraint("brown", lp.GE, -green,
				lp.Term{Var: brown[d][h], Coeff: 1},
				lp.Term{Var: load[d][h], Coeff: -1.08},
				lp.Term{Var: mig[d][h], Coeff: -1.08}); err != nil {
				b.Fatal(err)
			}
			if err := prob.AddConstraint("cap", lp.LE, totalLoad,
				lp.Term{Var: load[d][h], Coeff: 1},
				lp.Term{Var: mig[d][h], Coeff: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return prob
}

// BenchmarkLPSolve measures a cold solve of the scheduler-shaped partition
// LP (3 datacenters × 48 hours, 432 variables / 480 rows) — the from-scratch
// path of the revised simplex: standardize, factorize the slack basis,
// phase 1 + phase 2.  The presolve sub-benchmarks A/B the default reduction
// pass against a raw solve of the same model.
func BenchmarkLPSolve(b *testing.B) {
	modes := []struct {
		name string
		mode lp.PresolveMode
	}{
		{"presolve", lp.PresolveAuto},
		{"raw", lp.PresolveOff},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			prob := partitionLP(b, lpBenchDCs, lpBenchHorizon, 0)
			opts := lp.SolveOptions{Presolve: m.mode}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prob.SolveWithOptions(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// presolvableLP builds a model with deliberately removable structure — a
// third of the columns fixed, singleton rows that only restate variable
// bounds, redundant capacity rows and exact duplicate columns — around a
// dense feasible core.  It is the shape presolve exists for: models
// machine-generated from templates where most rows carry no information.
func presolvableLP(b *testing.B) *lp.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	const groups = 40
	prob := lp.NewProblem(lp.Minimize)
	var err error
	coreVars := make([]lp.Var, 0, groups*2)
	for g := 0; g < groups; g++ {
		var x, d1, d2, fx lp.Var
		if x, err = prob.AddVariable("x", 0, 10, 1+rng.Float64()); err != nil {
			b.Fatal(err)
		}
		cost := 1 + rng.Float64()
		if d1, err = prob.AddVariable("d1", 0, 4, cost); err != nil {
			b.Fatal(err)
		}
		if d2, err = prob.AddVariable("d2", 0, 6, cost); err != nil { // exact duplicate of d1
			b.Fatal(err)
		}
		if fx, err = prob.AddVariable("fx", 3, 3, rng.Float64()); err != nil { // fixed
			b.Fatal(err)
		}
		coreVars = append(coreVars, x, d1)
		// Singleton row restating x ≤ 8 (folds into the bound), a redundant
		// cap and the duplicate-coupling row.
		if err = prob.AddConstraint("sing", lp.LE, 16, lp.Term{Var: x, Coeff: 2}); err != nil {
			b.Fatal(err)
		}
		if err = prob.AddConstraint("slack", lp.LE, 1000,
			lp.Term{Var: x, Coeff: 1}, lp.Term{Var: fx, Coeff: 1}); err != nil {
			b.Fatal(err)
		}
		if err = prob.AddConstraint("dup", lp.GE, 2+rng.Float64()*3,
			lp.Term{Var: d1, Coeff: 1}, lp.Term{Var: d2, Coeff: 1}); err != nil {
			b.Fatal(err)
		}
	}
	// A dense core so the reduced model still has real simplex work.
	for i := 0; i < groups/2; i++ {
		terms := make([]lp.Term, 0, 8)
		for k := 0; k < 8; k++ {
			terms = append(terms, lp.Term{Var: coreVars[rng.Intn(len(coreVars))], Coeff: 0.5 + rng.Float64()})
		}
		if err = prob.AddConstraint("core", lp.GE, 1+rng.Float64()*4, terms...); err != nil {
			b.Fatal(err)
		}
	}
	return prob
}

// BenchmarkLPPresolve measures the presolve payoff on a reduction-heavy
// model: the presolve arm reports what the pass removed (rows/cols per op)
// so a reduction regression is visible even when wall-clock noise hides it,
// and the raw arm solves the identical model with the pass disabled.
func BenchmarkLPPresolve(b *testing.B) {
	b.Run("presolve", func(b *testing.B) {
		prob := presolvableLP(b)
		var stats lp.Stats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sol, err := prob.Solve()
			if err != nil {
				b.Fatal(err)
			}
			stats = sol.Stats
		}
		b.ReportMetric(float64(stats.RowsRemoved), "rows_removed/op")
		b.ReportMetric(float64(stats.ColsRemoved), "cols_removed/op")
		b.ReportMetric(float64(stats.Pivots), "pivots/op")
	})
	b.Run("raw", func(b *testing.B) {
		prob := presolvableLP(b)
		opts := lp.SolveOptions{Presolve: lp.PresolveOff}
		pivots := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sol, err := prob.SolveWithOptions(opts)
			if err != nil {
				b.Fatal(err)
			}
			pivots = sol.Stats.Pivots
		}
		b.ReportMetric(float64(pivots), "pivots/op")
	})
}

// BenchmarkLPResolve measures the warm-started re-solve path that
// internal/sched and internal/milp live on: the same partition LP with its
// right-hand sides perturbed each round, re-solved from the previous
// round's Basis (dual-simplex restart).  The gap between this and
// BenchmarkLPSolve is the payoff of the basis-reuse API.
func BenchmarkLPResolve(b *testing.B) {
	prob := partitionLP(b, lpBenchDCs, lpBenchHorizon, 0)
	sol, err := prob.Solve()
	if err != nil {
		b.Fatal(err)
	}
	basis := sol.Basis()
	const nPlace = lpBenchHorizon // placement rows are constraints [0, horizon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Perturb the round's total load and re-solve warm.
		totalLoad := 900.0 + float64(i%2)*50
		for h := 0; h < nPlace; h++ {
			if err := prob.SetRHS(h, totalLoad); err != nil {
				b.Fatal(err)
			}
		}
		warm, err := prob.SolveFrom(basis)
		if err != nil {
			b.Fatal(err)
		}
		basis = warm.Basis()
	}
}

// BenchmarkLPBounded measures a cold solve of a bound-heavy covering LP
// (240 variables, every one carrying a finite upper bound, 24 rows) — the
// shape of the milp branch-and-bound relaxations, where variable bounds
// dominate the model.  The bounded revised simplex keeps those bounds
// implicit (nonbasic-at-bound statuses and bound flips), so the basis
// stays 24×24; the pre-bounded core expanded every finite bound into an
// explicit row plus a slack column and factorized a 264×264 basis for the
// same model.
func BenchmarkLPBounded(b *testing.B) {
	const (
		nVars = 240
		nCons = 24
	)
	rng := rand.New(rand.NewSource(17))
	prob := lp.NewProblem(lp.Minimize)
	vars := make([]lp.Var, nVars)
	ubs := make([]float64, nVars)
	var err error
	for j := 0; j < nVars; j++ {
		ubs[j] = 0.5 + rng.Float64()*2.5
		if vars[j], err = prob.AddVariable("x", 0, ubs[j], 0.1+rng.Float64()*1.9); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < nCons; i++ {
		terms := make([]lp.Term, 0, nVars/2)
		capacity := 0.0
		for j := 0; j < nVars; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			a := 0.2 + rng.Float64()*1.3
			capacity += a * ubs[j]
			terms = append(terms, lp.Term{Var: vars[j], Coeff: a})
		}
		// Demand at 30% of what the bounded variables can jointly cover
		// keeps every instance feasible while forcing a third of the
		// columns to their upper bounds.
		if err := prob.AddConstraint("cover", lp.GE, 0.3*capacity, terms...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPPricing A/B-tests the three pricing rules on a cold solve of
// the scheduler-shaped partition LP.  Each sub-benchmark reports pivots/op
// alongside ns/op, so a pricing change shows up both as wall-clock and as
// iteration count; the devex/dantzig gap is the payoff of reference-weight
// steepest-edge approximation, the dantzig/bland gap the cost of the
// anti-cycling fallback if it were the primary rule.
func BenchmarkLPPricing(b *testing.B) {
	rules := []struct {
		name string
		rule lp.PricingRule
	}{
		{"devex", lp.PricingDevex},
		{"dantzig", lp.PricingDantzig},
		{"bland", lp.PricingBland},
	}
	for _, r := range rules {
		b.Run(r.name, func(b *testing.B) {
			prob := partitionLP(b, lpBenchDCs, lpBenchHorizon, 0)
			opts := lp.SolveOptions{Pricing: r.rule}
			pivots := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := prob.SolveWithOptions(opts)
				if err != nil {
					b.Fatal(err)
				}
				pivots = sol.Stats.Pivots
			}
			b.ReportMetric(float64(pivots), "pivots/op")
		})
	}
}

// kernelEpochs is the row length of the series-kernel microbenchmarks: one
// hourly year, the largest epoch grid the evaluator runs on.  The kernels
// below are the hot inner loops of the schedule merge (WeightedSum), the
// per-site stage (ScaledDrop, AddMul, DotWeighted) and the O(1) clean-site
// revalidation (Digest); benchmarking them in isolation gives future
// vectorization work a baseline that is not confounded by the pipeline
// around them.
const kernelEpochs = 8760

func kernelRows(n int) (x, y, z, dst []float64) {
	rng := rand.New(rand.NewSource(1))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	dst = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * 1000
		y[i] = rng.Float64() * 1000
		z[i] = 1 + rng.Float64()
	}
	return
}

// BenchmarkSeriesWeightedSum measures the schedule-merge/green-production
// kernel dst = a·x + b·y over one row.
func BenchmarkSeriesWeightedSum(b *testing.B) {
	x, y, _, dst := kernelRows(kernelEpochs)
	b.SetBytes(3 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.WeightedSum(dst, 2.5, x, 0.75, y)
	}
}

// BenchmarkSeriesAddMul measures the facility-demand kernel
// dst = (x + y)·z over one row.
func BenchmarkSeriesAddMul(b *testing.B) {
	x, y, z, dst := kernelRows(kernelEpochs)
	b.SetBytes(4 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.AddMul(dst, x, y, z)
	}
}

// BenchmarkSeriesSum measures the plain reduction kernel Σ x over one row
// (4-way unrolled, single accumulator — the addition chain is part of the
// bit-identity contract).
func BenchmarkSeriesSum(b *testing.B) {
	x, _, _, _ := kernelRows(kernelEpochs)
	b.SetBytes(8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += series.Sum(x)
	}
	_ = sink
}

// BenchmarkSeriesDotWeighted measures the energy-balance totals kernel
// Σ x·w over one row.
func BenchmarkSeriesDotWeighted(b *testing.B) {
	x, w, _, _ := kernelRows(kernelEpochs)
	b.SetBytes(2 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += series.DotWeighted(x, w)
	}
	_ = sink
}

// BenchmarkSeriesScaledDrop measures the migration-overhead kernel over one
// schedule row.
func BenchmarkSeriesScaledDrop(b *testing.B) {
	x, _, _, dst := kernelRows(kernelEpochs)
	b.SetBytes(2 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.ScaledDrop(dst, 0.5, x)
	}
}

// BenchmarkSeriesDigest measures the schedule-row digest that backs the
// delta evaluator's O(1) clean-site revalidation.
func BenchmarkSeriesDigest(b *testing.B) {
	x, _, _, _ := kernelRows(kernelEpochs)
	b.SetBytes(8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= series.Digest(x)
	}
	_ = sink
}
