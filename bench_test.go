package greencloud_test

import (
	"math/rand"
	"sync"
	"testing"

	"greencloud/internal/core"
	"greencloud/internal/experiments"
	"greencloud/internal/location"
	"greencloud/internal/series"
)

// suite is shared across benchmarks: the synthetic catalog and the cached
// sweeps are expensive to build, and sharing them mirrors how the paper's
// evaluation reuses one dataset for every figure.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(experiments.Config{Budget: experiments.Quick, Seed: 1})
	})
	if suiteErr != nil {
		b.Fatalf("build experiment suite: %v", suiteErr)
	}
	return suite
}

// runExperiment benchmarks one table/figure generator and reports its rows
// as a sanity check (an empty table means the experiment silently produced
// nothing).
func runExperiment(b *testing.B, id string) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := s.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: experiment produced no rows", id)
		}
	}
}

// BenchmarkEvaluateSteadyState measures one cached-evaluator cost evaluation
// — the annealing inner loop.  The evaluator owns all scratch state, so the
// benchmark must report 0 allocs/op; a regression here puts garbage-collector
// pressure back into Chains × MaxIterations × sweep-points of work.
func BenchmarkEvaluateSteadyState(b *testing.B) {
	cat, err := location.Generate(location.Options{Count: 60, Seed: 1, RepresentativeDays: 2})
	if err != nil {
		b.Fatalf("generate catalog: %v", err)
	}
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 10_000
	ev, err := core.NewEvaluator(cat, spec)
	if err != nil {
		b.Fatalf("build evaluator: %v", err)
	}
	candidates := []core.Candidate{{SiteID: 2}, {SiteID: 5}, {SiteID: 9}}
	if _, err := ev.EvaluateCost(candidates); err != nil {
		b.Fatalf("warm-up evaluation: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateCost(candidates); err != nil {
			b.Fatalf("evaluate: %v", err)
		}
	}
}

// BenchmarkEvaluateDeltaMove measures the annealing inner loop as a chain
// actually drives it: alternating single-site moves against a warm
// evaluator, so each evaluation re-runs only the dirty site's pipeline plus
// the shared schedule merge.  Must stay at 0 allocs/op.
func BenchmarkEvaluateDeltaMove(b *testing.B) {
	cat, err := location.Generate(location.Options{Count: 60, Seed: 1, RepresentativeDays: 2})
	if err != nil {
		b.Fatalf("generate catalog: %v", err)
	}
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 10_000
	ev, err := core.NewEvaluator(cat, spec)
	if err != nil {
		b.Fatalf("build evaluator: %v", err)
	}
	base := []core.Candidate{{SiteID: 2, CapacityKW: 5_000}, {SiteID: 5, CapacityKW: 5_000}, {SiteID: 9, CapacityKW: 5_000}}
	grown := []core.Candidate{{SiteID: 2, CapacityKW: 6_250}, {SiteID: 5, CapacityKW: 5_000}, {SiteID: 9, CapacityKW: 5_000}}
	growMv := core.Move{Kind: core.MoveGrow, Site: 2, OldCap: 5_000, NewCap: 6_250}
	shrinkMv := core.Move{Kind: core.MoveShrink, Site: 2, OldCap: 6_250, NewCap: 5_000}
	for _, cands := range [][]core.Candidate{base, grown} {
		if _, err := ev.EvaluateCost(cands); err != nil {
			b.Fatalf("warm-up evaluation: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateCostMove(grown, growMv); err != nil {
			b.Fatalf("evaluate: %v", err)
		}
		if _, err := ev.EvaluateCostMove(base, shrinkMv); err != nil {
			b.Fatalf("evaluate: %v", err)
		}
	}
}

// BenchmarkSolveSmallNetwork measures a full heuristic solve (filtering
// skipped, parallel annealing chains over the cached evaluator pool).
func BenchmarkSolveSmallNetwork(b *testing.B) {
	cat, err := location.Generate(location.Options{Count: 60, Seed: 1, RepresentativeDays: 2})
	if err != nil {
		b.Fatalf("generate catalog: %v", err)
	}
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 10_000
	candidates, err := core.FilterSites(cat, spec, 15)
	if err != nil {
		b.Fatalf("filter sites: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.SolveOptions{Candidates: candidates, Chains: 4, MaxIterations: 40, Seed: 1}
		if _, err := core.Solve(cat, spec, opts); err != nil {
			b.Fatalf("solve: %v", err)
		}
	}
}

// BenchmarkFig3CapacityFactors regenerates the capacity-factor CDF (Fig. 3).
func BenchmarkFig3CapacityFactors(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4PUECurve regenerates the PUE-vs-temperature curve (Fig. 4).
func BenchmarkFig4PUECurve(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5PUEvsCF regenerates the PUE-vs-capacity-factor relation (Fig. 5).
func BenchmarkFig5PUEvsCF(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable2GoodLocations regenerates Table II (good brown/solar/wind sites).
func BenchmarkTable2GoodLocations(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig6SingleDCCostCDF regenerates the per-location cost CDF (Fig. 6).
func BenchmarkFig6SingleDCCostCDF(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7CaseStudy regenerates the 50 MW / 50 % green cost breakdown (Fig. 7).
func BenchmarkFig7CaseStudy(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8NetMetering regenerates cost vs. green % with net metering (Fig. 8).
func BenchmarkFig8NetMetering(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Batteries regenerates cost vs. green % with batteries (Fig. 9).
func BenchmarkFig9Batteries(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10NoStorage regenerates cost vs. green % without storage (Fig. 10).
func BenchmarkFig10NoStorage(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11CapacityNetMeter regenerates capacity vs. green % with net metering (Fig. 11).
func BenchmarkFig11CapacityNetMeter(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12CapacityNoStorage regenerates capacity vs. green % without storage (Fig. 12).
func BenchmarkFig12CapacityNoStorage(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13MigrationImpact regenerates cost vs. migration overhead (Fig. 13).
func BenchmarkFig13MigrationImpact(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable3NoStorageNetwork regenerates the 100 % green / no-storage network (Table III).
func BenchmarkTable3NoStorageNetwork(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig15FollowRenewables regenerates the follow-the-renewables day trace (Fig. 15).
func BenchmarkFig15FollowRenewables(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkSchedulerComputeTime measures the GreenNebula scheduler's
// migration-schedule computation time (Section V-C).
func BenchmarkSchedulerComputeTime(b *testing.B) { runExperiment(b, "sched-timing") }

// BenchmarkHeuristicVsExactSmall compares the heuristic solver against the
// exact MILP on a small instance (Section III-D).
func BenchmarkHeuristicVsExactSmall(b *testing.B) { runExperiment(b, "heuristic-vs-exact") }

// kernelEpochs is the row length of the series-kernel microbenchmarks: one
// hourly year, the largest epoch grid the evaluator runs on.  The kernels
// below are the hot inner loops of the schedule merge (WeightedSum), the
// per-site stage (ScaledDrop, AddMul, DotWeighted) and the O(1) clean-site
// revalidation (Digest); benchmarking them in isolation gives future
// vectorization work a baseline that is not confounded by the pipeline
// around them.
const kernelEpochs = 8760

func kernelRows(n int) (x, y, z, dst []float64) {
	rng := rand.New(rand.NewSource(1))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	dst = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * 1000
		y[i] = rng.Float64() * 1000
		z[i] = 1 + rng.Float64()
	}
	return
}

// BenchmarkSeriesWeightedSum measures the schedule-merge/green-production
// kernel dst = a·x + b·y over one row.
func BenchmarkSeriesWeightedSum(b *testing.B) {
	x, y, _, dst := kernelRows(kernelEpochs)
	b.SetBytes(3 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.WeightedSum(dst, 2.5, x, 0.75, y)
	}
}

// BenchmarkSeriesAddMul measures the facility-demand kernel
// dst = (x + y)·z over one row.
func BenchmarkSeriesAddMul(b *testing.B) {
	x, y, z, dst := kernelRows(kernelEpochs)
	b.SetBytes(4 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.AddMul(dst, x, y, z)
	}
}

// BenchmarkSeriesDotWeighted measures the energy-balance totals kernel
// Σ x·w over one row.
func BenchmarkSeriesDotWeighted(b *testing.B) {
	x, w, _, _ := kernelRows(kernelEpochs)
	b.SetBytes(2 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += series.DotWeighted(x, w)
	}
	_ = sink
}

// BenchmarkSeriesScaledDrop measures the migration-overhead kernel over one
// schedule row.
func BenchmarkSeriesScaledDrop(b *testing.B) {
	x, _, _, dst := kernelRows(kernelEpochs)
	b.SetBytes(2 * 8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.ScaledDrop(dst, 0.5, x)
	}
}

// BenchmarkSeriesDigest measures the schedule-row digest that backs the
// delta evaluator's O(1) clean-site revalidation.
func BenchmarkSeriesDigest(b *testing.B) {
	x, _, _, _ := kernelRows(kernelEpochs)
	b.SetBytes(8 * kernelEpochs)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= series.Digest(x)
	}
	_ = sink
}
