package renewables

import (
	"errors"
	"testing"

	"greencloud/placement"
)

func testCatalog(t *testing.T) *placement.Catalog {
	t.Helper()
	cat, err := placement.NewCatalog(placement.CatalogOptions{Locations: 80, Seed: 21, RepresentativeDays: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("want ErrBadConfig, got %v", err)
	}
	cat := testCatalog(t)
	cfg := Config{
		Catalog: cat,
		Datacenters: []Datacenter{
			{LocationIndex: 0, CapacityKW: 1},
			{LocationIndex: 99999, CapacityKW: 1},
		},
		VMs:   2,
		Hours: 1,
	}
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown location index: want ErrBadConfig, got %v", err)
	}
}

func TestBestSolarSitesAcrossTimeZones(t *testing.T) {
	cat := testCatalog(t)
	sites := BestSolarSitesAcrossTimeZones(cat, 3)
	if len(sites) != 3 {
		t.Fatalf("got %d sites, want 3", len(sites))
	}
	seen := map[int]bool{}
	for _, id := range sites {
		if seen[id] {
			t.Fatal("duplicate site index")
		}
		seen[id] = true
	}
}

func TestRunFollowTheSun(t *testing.T) {
	cat := testCatalog(t)
	siteIdx := BestSolarSitesAcrossTimeZones(cat, 3)
	const fleetKW = 0.27
	var dcs []Datacenter
	for _, idx := range siteIdx {
		dcs = append(dcs, Datacenter{
			LocationIndex: idx,
			CapacityKW:    fleetKW,
			SolarKW:       fleetKW * 8,
			WindKW:        fleetKW * 0.1,
		})
	}
	report, err := Run(Config{
		Catalog:          cat,
		Datacenters:      dcs,
		VMs:              9,
		StartDay:         172,
		Hours:            12,
		HorizonHours:     12,
		WANBandwidthMbps: 100,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Trace) != 12*3 {
		t.Fatalf("trace has %d samples, want %d", len(report.Trace), 12*3)
	}
	if report.GreenFraction < 0 || report.GreenFraction > 1 {
		t.Errorf("green fraction %v out of range", report.GreenFraction)
	}
	if report.AvgScheduleMillis <= 0 {
		t.Error("scheduler timing not reported")
	}
	totalVMs := 0
	for _, s := range report.Trace {
		if s.Hour == 5 {
			totalVMs += s.VMs
		}
	}
	if totalVMs != 9 {
		t.Errorf("hour 5 hosts %d VMs in total, want 9", totalVMs)
	}
}
