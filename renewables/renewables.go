// Package renewables is the public API for GreenNebula, the paper's
// follow-the-renewables VM placement and migration system: build a
// federation of green datacenters, hand it a fleet of HPC virtual machines,
// and run the hourly scheduler that moves the load to wherever green energy
// is being produced.
package renewables

import (
	"errors"
	"fmt"

	"greencloud/internal/emul"
	"greencloud/internal/location"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
	"greencloud/placement"
)

// Datacenter describes one member of the federation.
type Datacenter struct {
	// Name identifies the datacenter.
	Name string
	// LocationIndex selects the site from the catalog.
	LocationIndex int
	// CapacityKW is the IT capacity.
	CapacityKW float64
	// SolarKW and WindKW are the on-site plant sizes.
	SolarKW float64
	WindKW  float64
}

// Config describes a follow-the-renewables run.
type Config struct {
	// Catalog supplies the weather/energy traces for the sites.
	Catalog *placement.Catalog
	// Datacenters is the federation (at least two).
	Datacenters []Datacenter
	// VMs is the number of paper-style HPC VMs to host (1 vCPU, 512 MB,
	// 5 GB disk, 30 W, 110 MB/h of disk writes).
	VMs int
	// StartDay is the day of the typical meteorological year to start at.
	StartDay int
	// Hours is the emulation length (default 24).
	Hours int
	// HorizonHours is the scheduler's prediction horizon (default 48).
	HorizonHours int
	// WANBandwidthMbps is the bandwidth between every pair of datacenters
	// (default: the paper's ~2 Mbps VPN measurement).
	WANBandwidthMbps float64
	// Predictor selects the green-energy predictor: "perfect" (paper
	// default), "persistence" or "diurnal".
	Predictor string
}

// HourSample is one datacenter-hour of the run.
type HourSample struct {
	Hour          int
	Datacenter    string
	GreenKW       float64
	LoadKW        float64
	OverheadKW    float64
	MigrationKW   float64
	BrownKW       float64
	VMs           int
	MigrationsIn  int
	MigrationsOut int
}

// Report summarizes a run.
type Report struct {
	Trace              []HourSample
	Migrations         int
	GreenFraction      float64
	MigrationEnergyKWh float64
	BrownEnergyKWh     float64
	AvgScheduleMillis  float64
}

// Errors returned by Run.
var ErrBadConfig = errors.New("renewables: invalid configuration")

// Run executes the follow-the-renewables emulation.
func Run(cfg Config) (*Report, error) {
	if cfg.Catalog == nil || len(cfg.Datacenters) < 2 {
		return nil, fmt.Errorf("%w: need a catalog and at least two datacenters", ErrBadConfig)
	}
	if cfg.VMs <= 0 {
		cfg.VMs = 9
	}
	if cfg.Hours <= 0 {
		cfg.Hours = 24
	}
	bandwidth := cfg.WANBandwidthMbps
	if bandwidth <= 0 {
		bandwidth = wan.DefaultLink.BandwidthMbps
	}

	inner := cfg.Catalog.Internal()
	dcs := make([]emul.DatacenterConfig, 0, len(cfg.Datacenters))
	for _, dc := range cfg.Datacenters {
		site, err := lookupSite(inner, dc.LocationIndex)
		if err != nil {
			return nil, err
		}
		name := dc.Name
		if name == "" {
			name = site.Name
		}
		dcs = append(dcs, emul.DatacenterConfig{
			Name:       name,
			Site:       site,
			CapacityKW: dc.CapacityKW,
			SolarKW:    dc.SolarKW,
			WindKW:     dc.WindKW,
		})
	}
	res, err := emul.Run(emul.Config{
		Datacenters:       dcs,
		VMs:               vm.NewHPCFleet("hpc", cfg.VMs),
		StartHour:         cfg.StartDay * 24,
		Hours:             cfg.Hours,
		HorizonHours:      cfg.HorizonHours,
		MigrationFraction: 1,
		Link:              wan.Link{BandwidthMbps: bandwidth, LatencyMs: 90},
		Predictor:         cfg.Predictor,
	})
	if err != nil {
		return nil, err
	}
	report := &Report{
		Migrations:         res.Migrations,
		GreenFraction:      res.GreenFraction,
		MigrationEnergyKWh: res.TotalMigrationKWh,
		BrownEnergyKWh:     res.TotalBrownKWh,
		AvgScheduleMillis:  float64(res.AvgScheduleNanos) / 1e6,
	}
	for _, rec := range res.Trace {
		report.Trace = append(report.Trace, HourSample{
			Hour:          rec.Hour,
			Datacenter:    rec.Datacenter,
			GreenKW:       rec.GreenKW,
			LoadKW:        rec.LoadKW,
			OverheadKW:    rec.PUEOverheadKW,
			MigrationKW:   rec.MigrationKW,
			BrownKW:       rec.BrownKW,
			VMs:           rec.VMCount,
			MigrationsIn:  rec.MigrationsIn,
			MigrationsOut: rec.MigrationsOut,
		})
	}
	return report, nil
}

func lookupSite(cat *location.Catalog, index int) (*location.Site, error) {
	site, err := cat.Site(index)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return site, nil
}

// BestSolarSitesAcrossTimeZones returns the indices of n good solar sites
// spread across time zones — a convenient starting federation for
// follow-the-sun experiments.
func BestSolarSitesAcrossTimeZones(catalog *placement.Catalog, n int) []int {
	inner := catalog.Internal()
	candidates := inner.TopBySolarCF(24)
	if len(candidates) == 0 {
		return nil
	}
	picked := []*location.Site{candidates[0]}
	for len(picked) < n && len(picked) < len(candidates) {
		var best *location.Site
		bestDist := -1.0
		for _, cand := range candidates {
			minDist := 24.0
			already := false
			for _, p := range picked {
				if p.ID == cand.ID {
					already = true
					break
				}
				d := float64(cand.UTCOffsetHours - p.UTCOffsetHours)
				if d < 0 {
					d = -d
				}
				if d > 12 {
					d = 24 - d
				}
				if d < minDist {
					minDist = d
				}
			}
			if already {
				continue
			}
			if minDist > bestDist {
				bestDist = minDist
				best = cand
			}
		}
		if best == nil {
			break
		}
		picked = append(picked, best)
	}
	out := make([]int, 0, len(picked))
	for _, p := range picked {
		out = append(out, p.ID)
	}
	return out
}
