* Beale's classic cycling example (1955): the degenerate LP on which naive
* Dantzig pricing cycles forever without an anti-cycling rule.  Public
* domain textbook instance.
*
*   min -0.75 X1 + 150 X2 - 0.02 X3 + 6 X4
*   s.t. 0.25 X1 - 60 X2 - 0.04 X3 + 9 X4 <= 0
*        0.50 X1 - 90 X2 - 0.02 X3 + 3 X4 <= 0
*                              X3          <= 1
*        X >= 0
*
* Optimal: X = (0.04, 0, 1, 0), objective -0.05.
NAME          BEALE
ROWS
 N  OBJ
 L  R1
 L  R2
 L  R3
COLUMNS
    X1        OBJ       -0.75      R1        0.25
    X1        R2        0.5
    X2        OBJ       150.0      R1        -60.0
    X2        R2        -90.0
    X3        OBJ       -0.02      R1        -0.04
    X3        R2        -0.02
    X3        R3        1.0
    X4        OBJ       6.0        R1        9.0
    X4        R2        3.0
RHS
    RHS       R3        1.0
ENDATA
