* Production-mix maximization with an upper-bounded variable: exercises
* OBJSENSE MAX and the BOUNDS section.  Textbook formulation, public domain.
*
*   max 30 X + 20 Y
*   s.t. 2 X +   Y <= 100   (machine hours)
*          X +   Y <=  80   (labor hours)
*          0 <= X <= 40, Y >= 0
*
* Optimal: X = 20, Y = 60, objective 1800 (the X bound is slack; duals
* 10/10 on the two rows certify it).
NAME          PRODMIX
OBJSENSE
    MAX
ROWS
 N  PROFIT
 L  MACH
 L  LABOR
COLUMNS
    X         PROFIT    30.0       MACH      2.0
    X         LABOR     1.0
    Y         PROFIT    20.0       MACH      1.0
    Y         LABOR     1.0
RHS
    RHS       MACH      100.0      LABOR     80.0
BOUNDS
 UP BND       X         40.0
ENDATA
