* Balanced Hitchcock transportation problem: two plants, three markets,
* equality supply and demand rows.  Textbook formulation, public domain.
*
*   costs        M1  M2  M3   supply
*     P1          4   6   8     200
*     P2          5   4   7     300
*   demand      150 250 100
*
* Optimal: P1->M1 150, P1->M3 50, P2->M2 250, P2->M3 50, objective 2350
* (duals u = (0, -1), v = (4, 5, 8) price every lane out).
NAME          TRANSPORT
ROWS
 N  COST
 E  SUP1
 E  SUP2
 E  DEM1
 E  DEM2
 E  DEM3
COLUMNS
    X11       COST      4.0        SUP1      1.0
    X11       DEM1      1.0
    X12       COST      6.0        SUP1      1.0
    X12       DEM2      1.0
    X13       COST      8.0        SUP1      1.0
    X13       DEM3      1.0
    X21       COST      5.0        SUP2      1.0
    X21       DEM1      1.0
    X22       COST      4.0        SUP2      1.0
    X22       DEM2      1.0
    X23       COST      7.0        SUP2      1.0
    X23       DEM3      1.0
RHS
    RHS       SUP1      200.0      SUP2      300.0
    RHS       DEM1      150.0      DEM2      250.0
    RHS       DEM3      100.0
ENDATA
