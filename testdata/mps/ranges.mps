* Interval-constraint instance: the RANGES section turns the G row into
* 10 <= X + Y <= 15 and the L row into -4 <= X - Y <= 4, and the optimum
* sits on the range-added upper bound of the G row.  Public domain.
*
*   min -X - Y
*   s.t. 10 <= X + Y <= 15
*        -4 <= X - Y <=  4
*        X, Y >= 0
*
* Optimal: X = 9.5, Y = 5.5 (both interval bounds active), objective -15.
NAME          RANGES
ROWS
 N  OBJ
 G  BAND
 L  DIFF
COLUMNS
    X         OBJ       -1.0       BAND      1.0
    X         DIFF      1.0
    Y         OBJ       -1.0       BAND      1.0
    Y         DIFF      -1.0
RHS
    RHS       BAND      10.0       DIFF      4.0
RANGES
    RNG       BAND      5.0        DIFF      8.0
ENDATA
