* Miniature Stigler-style diet problem: cheapest food mix meeting two
* nutrient minimums.  Textbook formulation, public domain.
*
*   min 2 A + 3 B
*   s.t.   A + 2 B >= 8   (protein)
*        3 A +   B >= 9   (vitamins)
*        A, B >= 0
*
* Optimal: A = 2, B = 3, objective 13.
NAME          DIET
ROWS
 N  COST
 G  PROT
 G  VITA
COLUMNS
    A         COST      2.0        PROT      1.0
    A         VITA      3.0
    B         COST      3.0        PROT      2.0
    B         VITA      1.0
RHS
    RHS       PROT      8.0        VITA      9.0
ENDATA
